"""Tests for the exact spatial domination test and domination-count
estimation.

Ground truth comes from dense point sampling: ``region ⊆ dom(a, b)`` iff
``distmax(a, r) < distmin(b, r)`` for every sampled ``r`` — with margins
checked so sampling cannot miss a thin violation near the decision
boundary (the exact test is also validated at analytically constructed
corner cases).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    DominationTester,
    Rect,
    dominates,
    dominates_batch,
    domination_margins,
    max_domination_margin,
    region_fully_dominated,
)

coord = st.floats(-50, 50, allow_nan=False, allow_infinity=False)


@st.composite
def rects(draw, dims=2, max_span=20):
    lo = np.array([draw(coord) for _ in range(dims)])
    span = np.array(
        [draw(st.floats(0, max_span, allow_nan=False)) for _ in range(dims)]
    )
    return Rect(lo, lo + span)


def sampled_max_margin(a, b, region, n=4000, seed=3):
    """Monte-Carlo lower bound on max_{r in region} f(r)."""
    rng = np.random.default_rng(seed)
    pts = region.sample_points(n, rng)
    pts = np.vstack([pts, region.corners(), region.center[None, :]])
    margins = domination_margins(a, b, pts)
    return float(np.max(margins))


class TestDominates:
    def test_clear_domination(self):
        # a hugs the region, b is far away.
        a = Rect([0, 0], [1, 1])
        b = Rect([100, 100], [101, 101])
        region = Rect([0, 0], [2, 2])
        assert dominates(a, b, region)

    def test_clear_non_domination(self):
        a = Rect([100, 100], [101, 101])
        b = Rect([0, 0], [1, 1])
        region = Rect([0, 0], [2, 2])
        assert not dominates(a, b, region)

    def test_overlap_never_dominates(self):
        # Lemma 2: dom(a, b) is empty when u(a) intersects u(b).
        a = Rect([0, 0], [2, 2])
        b = Rect([1, 1], [3, 3])
        region = Rect([0, 0], [0.5, 0.5])
        assert not dominates(a, b, region)

    def test_boundary_is_strict(self):
        # Point a at origin, point b at (2, 0): bisector is x = 1.
        a = Rect.from_point([0.0, 0.0])
        b = Rect.from_point([2.0, 0.0])
        # A region reaching exactly the bisector: margin == 0, not < 0.
        region = Rect([0.0, -1.0], [1.0, 1.0])
        assert not dominates(a, b, region)
        # Strictly inside the half-space: dominated.
        region2 = Rect([0.0, -1.0], [0.99, 1.0])
        assert dominates(a, b, region2)

    def test_margin_sign_on_points(self):
        a = Rect.from_point([0.0, 0.0])
        b = Rect.from_point([4.0, 0.0])
        region = Rect.from_point([1.0, 0.0])  # 1 vs 3 away
        m = max_domination_margin(a, b, region)
        assert m == pytest.approx(1.0 - 9.0)

    @given(rects(), rects(), rects(max_span=10))
    @settings(max_examples=200, deadline=None)
    def test_exactness_vs_sampling_2d(self, a, b, region):
        analytic = max_domination_margin(a, b, region)
        sampled = sampled_max_margin(a, b, region)
        # Sampling evaluates sqrt-margins; convert the analytic squared
        # margin only through its sign, which is the decision SE uses.
        if analytic < -1e-9:
            # Provably dominated: no sampled point may violate.
            assert sampled < 1e-9
        if sampled > 1e-6:
            # A sampled point strictly outside dom => test must agree.
            assert analytic > 0

    @given(rects(dims=3, max_span=8), rects(dims=3, max_span=8),
           rects(dims=3, max_span=5))
    @settings(max_examples=100, deadline=None)
    def test_exactness_vs_sampling_3d(self, a, b, region):
        analytic = max_domination_margin(a, b, region)
        sampled = sampled_max_margin(a, b, region, n=2000)
        if analytic < -1e-9:
            assert sampled < 1e-9
        if sampled > 1e-6:
            assert analytic > 0

    def test_max_margin_attained_at_interior_candidate(self):
        # Construct a case where the max over the region is at B's bound,
        # strictly inside the region: B inside region, A far left.
        a = Rect([-10.0, 0.0], [-9.0, 1.0])
        b = Rect([2.0, 0.0], [3.0, 1.0])
        region = Rect([0.0, 0.0], [5.0, 1.0])
        analytic = max_domination_margin(a, b, region)
        sampled = sampled_max_margin(a, b, region, n=20000)
        assert analytic >= 0  # clearly not dominated
        # The analytic squared-margin must upper-bound any sampled point's
        # squared margin.
        rng = np.random.default_rng(0)
        pts = region.sample_points(5000, rng)
        from repro.geometry import (
            maxdist_sq_points_rect,
            mindist_sq_points_rect,
        )
        sq_margins = maxdist_sq_points_rect(pts, a) - mindist_sq_points_rect(
            pts, b
        )
        assert analytic >= np.max(sq_margins) - 1e-9


class TestDominatesBatch:
    def test_matches_scalar(self):
        rng = np.random.default_rng(5)
        los = rng.uniform(-20, 10, size=(50, 3))
        his = los + rng.uniform(0, 5, size=(50, 3))
        b = Rect([0, 0, 0], [2, 2, 2])
        region = Rect([5, 5, 5], [8, 8, 8])
        out = dominates_batch(los, his, b, region)
        for i in range(50):
            assert out[i] == dominates(Rect(los[i], his[i]), b, region)

    def test_empty_batch(self):
        b = Rect([0, 0], [1, 1])
        region = Rect([2, 2], [3, 3])
        out = dominates_batch(np.empty((0, 2)), np.empty((0, 2)), b, region)
        assert out.shape == (0,)


class TestDominationTester:
    def test_union_coverage_needs_partitioning(self):
        # Figure 6(b) analogue: neither a1 nor a2 dominates all of R
        # (each fails at the far top corner, where its distance ties
        # b's), but their dominated regions jointly cover R: a1 covers
        # the left half, a2 the right half.
        b = Rect.from_point([0.0, 3.0])
        a1 = Rect.from_point([-1.0, 0.0])
        a2 = Rect.from_point([1.0, 0.0])
        region = Rect([-1.0, -1.0], [1.0, 1.0])
        assert not dominates(a1, b, region)
        assert not dominates(a2, b, region)
        los = np.array([a1.lo, a2.lo])
        his = np.array([a1.hi, a2.hi])
        tester = DominationTester(m_max=8)
        assert not tester.region_intersects_nondominated(
            region, los, his, b
        )

    def test_single_partition_insufficient(self):
        b = Rect.from_point([0.0, 3.0])
        a1 = Rect.from_point([-1.0, 0.0])
        a2 = Rect.from_point([1.0, 0.0])
        region = Rect([-1.0, -1.0], [1.0, 1.0])
        los = np.array([a1.lo, a2.lo])
        his = np.array([a1.hi, a2.hi])
        tester = DominationTester(m_max=1)
        # With no splitting allowed the union coverage cannot be proven.
        assert tester.region_intersects_nondominated(region, los, his, b)

    def test_conservative_when_truly_intersecting(self):
        # The region contains b itself, so it certainly intersects
        # I(Cset, b) (b's own region is never dominated, Lemma 5).
        b = Rect([0, 0], [1, 1])
        region = Rect([-1, -1], [2, 2])
        a = Rect([10, 10], [11, 11])
        tester = DominationTester(m_max=40)
        assert tester.region_intersects_nondominated(
            region, np.array([a.lo]), np.array([a.hi]), b
        )

    def test_empty_cset_always_intersects(self):
        b = Rect([0, 0], [1, 1])
        region = Rect([5, 5], [6, 6])
        tester = DominationTester(m_max=4)
        assert tester.region_intersects_nondominated(
            region, np.empty((0, 2)), np.empty((0, 2)), b
        )

    def test_m_max_validation(self):
        with pytest.raises(ValueError):
            DominationTester(m_max=0)

    def test_stats_counting(self):
        b = Rect.from_point([0.0, 10.0])
        a = Rect.from_point([0.0, 0.0])
        region = Rect([-1, -1], [1, 1])
        tester = DominationTester(m_max=4)
        tester.region_intersects_nondominated(
            region, np.array([a.lo]), np.array([a.hi]), b
        )
        assert tester.stats.tests == 1
        # The single candidate dominates the whole region: fast path.
        assert tester.stats.fast_empty == 1
        tester.stats.reset()
        assert tester.stats.tests == 0

    def test_stats_partition_counting(self):
        # Figure 6(b) geometry again: forces the partitioned fallback.
        b = Rect.from_point([0.0, 3.0])
        a1 = Rect.from_point([-1.0, 0.0])
        a2 = Rect.from_point([1.0, 0.0])
        region = Rect([-1.0, -1.0], [1.0, 1.0])
        los = np.array([a1.lo, a2.lo])
        his = np.array([a1.hi, a2.hi])
        tester = DominationTester(m_max=8)
        assert not tester.region_intersects_nondominated(
            region, los, his, b
        )
        assert tester.stats.partitions_examined == 8

    def test_degenerate_region(self):
        # A zero-volume region dominated by a: proven empty intersection.
        b = Rect.from_point([0.0, 10.0])
        a = Rect.from_point([0.0, 0.0])
        region = Rect.from_point([0.0, 0.5])
        assert region_fully_dominated(
            region, np.array([a.lo]), np.array([a.hi]), b, m_max=2
        )

    def test_degenerate_region_not_dominated(self):
        b = Rect.from_point([0.0, 1.0])
        a = Rect.from_point([0.0, 100.0])
        region = Rect.from_point([0.0, 0.5])
        assert not region_fully_dominated(
            region, np.array([a.lo]), np.array([a.hi]), b, m_max=2
        )

    @given(st.integers(2, 30))
    @settings(max_examples=20, deadline=None)
    def test_false_only_when_truly_empty(self, m_max):
        """Safety direction: 'empty' verdicts are never wrong."""
        rng = np.random.default_rng(m_max)
        b = Rect.from_center(rng.uniform(0, 10, 2), 1.0)
        los = rng.uniform(0, 10, size=(6, 2))
        his = los + rng.uniform(0.1, 2, size=(6, 2))
        region = Rect.from_center(rng.uniform(0, 10, 2), 2.0)
        empty = region_fully_dominated(region, los, his, b, m_max=m_max)
        if empty:
            pts = region.sample_points(2000, rng)
            from repro.geometry import (
                maxdist_sq_points_rect,
                mindist_sq_points_rect,
            )
            min_b = mindist_sq_points_rect(pts, b)
            covered = np.zeros(len(pts), dtype=bool)
            for i in range(6):
                a = Rect(los[i], his[i])
                covered |= maxdist_sq_points_rect(pts, a) < min_b
            assert covered.all()
