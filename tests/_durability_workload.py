"""Deterministic mutation workload shared by the kill-and-recover oracle.

Parent and child process both import this module: the child applies
the mutation sequence through a durable :class:`~repro.api.Database`
until it is SIGKILLed; the parent recovers, reads the surviving epoch
``E``, rebuilds the reference state by applying the *same* first ``E``
mutations in memory, and demands bit-identical answers from all seven
verbs.  Determinism is absolute — mutation ``i`` is a pure function of
``i`` and the live id set, every pdf comes from a seeded generator —
so "the first E mutations" means the same thing in both processes.
"""

from __future__ import annotations

import numpy as np

from repro.api import Database
from repro.geometry import Rect
from repro.uncertain import (
    UncertainDataset,
    UncertainObject,
    synthetic_dataset,
    uniform_pdf,
)

#: Base dataset parameters (tiny: the oracle compares full answers).
BASE_N = 32
BASE_DIMS = 2
BASE_SEED = 7
BASE_SAMPLES = 4

#: Mutation-mix knobs: keep the population in a band so deletes and
#: inserts both keep happening for arbitrarily long sequences.
_MIN_LIVE = 24
_DELETE_P = 0.35
_INSERT_BASE_OID = 1_000_000

#: Query points the seven verbs are compared at (inside the domain).
QUERY_POINTS = [
    [2_500.0, 2_500.0],
    [5_000.0, 5_000.0],
    [7_500.0, 2_500.0],
]
GROUP_POINTS = [[2_000.0, 2_000.0], [3_000.0, 2_500.0]]


def base_dataset() -> UncertainDataset:
    """The deterministic starting database (epoch 0)."""
    return synthetic_dataset(
        n=BASE_N, dims=BASE_DIMS, seed=BASE_SEED, n_samples=BASE_SAMPLES
    )


def mutation(i: int, live_ids: list[int]):
    """The ``i``-th mutation given the current live id list.

    Returns ``("insert", UncertainObject)`` or ``("delete", oid)``.
    Pure: depends only on ``i`` and ``live_ids`` (in insertion order).
    """
    rng = np.random.default_rng(10_000 + i)
    if len(live_ids) > _MIN_LIVE and rng.random() < _DELETE_P:
        victim = live_ids[int(rng.integers(len(live_ids)))]
        return "delete", victim
    lo = rng.uniform(500.0, 9_000.0, size=BASE_DIMS)
    hi = lo + rng.uniform(20.0, 120.0, size=BASE_DIMS)
    region = Rect(lo, hi)
    instances, weights = uniform_pdf(region, BASE_SAMPLES, rng)
    obj = UncertainObject(
        oid=_INSERT_BASE_OID + i,
        region=region,
        instances=instances,
        weights=weights,
    )
    return "insert", obj


def apply_mutation(db, i: int) -> None:
    """Apply mutation ``i`` through a Database (or raw dataset)."""
    dataset = db.dataset if hasattr(db, "dataset") else db
    op, value = mutation(i, dataset.ids)
    if op == "insert":
        db.insert(value)
    else:
        db.delete(value)


def reference_database(epoch: int) -> Database:
    """An uninterrupted in-memory run of the first ``epoch`` mutations."""
    dataset = base_dataset()
    for i in range(epoch):
        apply_mutation(dataset, i)
    return Database(dataset)


def fingerprint(db: Database) -> dict:
    """Exact answers of all seven verbs, as comparable primitives.

    Floats are kept at full precision (dict equality is bitwise);
    mappings keep their iteration order so ordering regressions in
    recovery (a reordered snapshot would change nothing semantically
    but everything reproducibly) also surface.
    """
    out: dict = {"epoch": db.epoch, "ids": list(db.dataset.ids)}
    for name, q in zip(("q0", "q1", "q2"), QUERY_POINTS):
        nn = db.nn(q).answer
        knn = db.knn(q, k=2).answer
        topk = db.topk(q, k=2).answer
        thr = db.threshold(q, p=0.05).answer  # plain {oid: bool}
        enn = db.expected_nn(q).answer
        out[name] = {
            "nn": list(dict(nn.probabilities).items()),
            "knn": list(dict(knn.probabilities).items()),
            "topk": [
                (int(oid), float(p)) for oid, p in topk.ranking
            ],
            "threshold": sorted(
                (int(oid), bool(keep)) for oid, keep in thr.items()
            ),
            "expected_nn": [
                (int(oid), float(d)) for oid, d in enn.ranking
            ],
        }
    gnn = db.group_nn(GROUP_POINTS).answer
    out["group_nn"] = list(dict(gnn.probabilities).items())
    rnn_target = db.dataset[db.dataset.ids[0]]
    rnn = db.reverse_nn(rnn_target).answer
    out["reverse_nn"] = list(dict(rnn.probabilities).items())
    return out


def child_main(path: str) -> None:
    """Run the durable mutation workload until killed (never returns).

    Opens (or creates) the database at ``path`` with ``fsync="always"``
    and applies the mutation sequence from the recovered epoch onward.
    Prints ``READY`` once the first mutation has committed so the
    parent knows the WAL is live before scheduling the SIGKILL.  The
    parent kills this process at an arbitrary moment; whatever epoch
    the WAL preserved is the epoch the oracle replays to.
    """
    import sys

    from repro.storage import DurableStore

    if DurableStore.exists(path):
        db = Database.open(path, fsync="always")
    else:
        db = Database.open(path, dataset=base_dataset(), fsync="always")
    i = db.epoch
    apply_mutation(db, i)
    print("READY", flush=True)
    i += 1
    while True:
        apply_mutation(db, i)
        i += 1
        if i > 100_000:  # pragma: no cover - parent always kills first
            sys.exit(0)
