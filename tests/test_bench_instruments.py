"""Tests for benchmark instrumentation (repro.bench.instruments)."""

import time

import pytest

from repro.bench.instruments import RunningMean, Stopwatch, measure_io
from repro.storage import Pager


class TestStopwatch:
    def test_measures_elapsed_time(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.01)
        assert watch.seconds >= 0.009

    def test_accumulates_over_reentry(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.005)
        first = watch.seconds
        with watch:
            time.sleep(0.005)
        assert watch.seconds > first

    def test_reset(self):
        watch = Stopwatch()
        with watch:
            pass
        watch.reset()
        assert watch.seconds == 0.0

    def test_millis(self):
        watch = Stopwatch()
        watch.seconds = 0.5
        assert watch.millis == pytest.approx(500.0)

    def test_exception_still_accumulates(self):
        watch = Stopwatch()
        with pytest.raises(RuntimeError):
            with watch:
                time.sleep(0.005)
                raise RuntimeError("boom")
        assert watch.seconds >= 0.004


class TestMeasureIO:
    def test_captures_page_traffic(self):
        pager = Pager()
        pid = pager.allocate()
        pager.append(pid, 16, "x")
        with measure_io(pager) as io:
            pager.read(pid)
            pager.append(pid, 16, "y")
        assert io.reads == 1
        assert io.writes == 1
        assert io.total == 2

    def test_ignores_traffic_outside_block(self):
        pager = Pager()
        pid = pager.allocate()
        pager.read(pid)  # before
        with measure_io(pager) as io:
            pass
        pager.read(pid)  # after
        assert io.total == 0

    def test_nested_blocks(self):
        pager = Pager()
        pid = pager.allocate()
        with measure_io(pager) as outer:
            pager.read(pid)
            with measure_io(pager) as inner:
                pager.read(pid)
        assert inner.reads == 1
        assert outer.reads == 2

    def test_filled_even_on_exception(self):
        pager = Pager()
        pid = pager.allocate()
        with pytest.raises(ValueError):
            with measure_io(pager) as io:
                pager.read(pid)
                raise ValueError
        assert io.reads == 1


class TestRunningMean:
    def test_empty_mean_is_zero(self):
        assert RunningMean().mean == 0.0

    def test_mean(self):
        m = RunningMean()
        for v in (1.0, 2.0, 3.0):
            m.add(v)
        assert m.mean == pytest.approx(2.0)
        assert m.count == 3
        assert m.values == [1.0, 2.0, 3.0]
