"""Tests for the bisector ground-truth utilities."""

import numpy as np
import pytest

from repro.geometry import (
    Rect,
    domination_margin,
    domination_margins,
    locate_bisector_on_segment,
    point_in_dom,
    point_in_nondom,
    sample_bisector,
)


class TestMargins:
    def test_point_bisector_midpoint(self):
        a = Rect.from_point([0.0, 0.0])
        b = Rect.from_point([2.0, 0.0])
        assert domination_margin(a, b, np.array([1.0, 0.0])) == pytest.approx(
            0.0
        )

    def test_sign_convention(self):
        a = Rect.from_point([0.0, 0.0])
        b = Rect.from_point([10.0, 0.0])
        assert point_in_dom(a, b, np.array([0.0, 0.0]))
        assert point_in_nondom(a, b, np.array([10.0, 0.0]))

    def test_vectorized_matches_scalar(self):
        rng = np.random.default_rng(0)
        a = Rect([0, 0], [1, 2])
        b = Rect([4, 4], [5, 6])
        pts = rng.uniform(-3, 8, size=(25, 2))
        vec = domination_margins(a, b, pts)
        for i, p in enumerate(pts):
            assert vec[i] == pytest.approx(domination_margin(a, b, p))


class TestLocate:
    def test_locates_zero_crossing(self):
        a = Rect.from_point([0.0, 0.0])
        b = Rect.from_point([2.0, 0.0])
        p = locate_bisector_on_segment(
            a, b, np.array([0.0, 0.0]), np.array([2.0, 0.0])
        )
        assert p[0] == pytest.approx(1.0, abs=1e-6)

    def test_rect_bisector_is_on_margin_zero(self):
        a = Rect([0, 0], [1, 1])
        b = Rect([5, 0], [6, 1])
        p = locate_bisector_on_segment(
            a, b, np.array([0.5, 0.5]), np.array([10.0, 0.5])
        )
        assert abs(domination_margin(a, b, p)) < 1e-6

    def test_same_side_raises(self):
        a = Rect.from_point([0.0, 0.0])
        b = Rect.from_point([100.0, 0.0])
        with pytest.raises(ValueError):
            locate_bisector_on_segment(
                a, b, np.array([0.0, 0.0]), np.array([1.0, 0.0])
            )

    def test_endpoint_exactly_on_bisector(self):
        a = Rect.from_point([0.0, 0.0])
        b = Rect.from_point([2.0, 0.0])
        p = locate_bisector_on_segment(
            a, b, np.array([1.0, 0.0]), np.array([5.0, 0.0])
        )
        assert p[0] == pytest.approx(1.0)


class TestSample:
    def test_samples_lie_on_bisector(self):
        rng = np.random.default_rng(42)
        a = Rect([2, 2], [3, 3])
        b = Rect([7, 7], [8, 8])
        domain = Rect.cube(0, 10, 2)
        pts = sample_bisector(a, b, domain, 20, rng)
        assert len(pts) > 0
        for p in pts:
            assert abs(domination_margin(a, b, p)) < 1e-6

    def test_overlapping_regions_yield_no_bisector(self):
        # Lemma 2: dom(a, b) empty => margin never negative => no crossing.
        rng = np.random.default_rng(1)
        a = Rect([0, 0], [5, 5])
        b = Rect([2, 2], [7, 7])
        domain = Rect.cube(0, 10, 2)
        pts = sample_bisector(a, b, domain, 10, rng)
        assert pts.shape == (0, 2)
