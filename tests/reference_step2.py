"""Pre-tensorization Step-2 implementations, kept as test oracles.

These are the dict-of-arrays, per-pair-``searchsorted`` kernels the
engines ran before the packed :class:`~repro.uncertain.InstanceStore`
and the global-sort kernel replaced them.  They are deliberately
retained verbatim (modulo imports) so the differential property tests
in ``tests/test_step2_kernel.py`` — and the old-vs-new benchmark in
``benchmarks/bench_step2_kernel.py`` — can pin the tensorized paths
against the original math: same half-weight tie convention, same
clamp, answers within 1e-9.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "reference_qualification_probabilities",
    "reference_knn_probabilities",
    "reference_groupnn_probabilities",
    "reference_reverse_instance_probability",
    "reference_probability_bounds",
]


def reference_qualification_probabilities(
    dataset,
    candidate_ids,
    queries,
    evaluate_ids=None,
):
    """The seed ``batched_qualification_probabilities`` (PR 1–3 era)."""
    Q = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    b = len(Q)
    if not candidate_ids:
        return [{} for _ in range(b)]
    if evaluate_ids is None:
        evaluate_ids = candidate_ids
    else:
        missing = set(evaluate_ids) - set(candidate_ids)
        if missing:
            raise ValueError(
                f"evaluate_ids not among candidates: {sorted(missing)}"
            )
    if len(candidate_ids) == 1:
        only = candidate_ids[0]
        row = {only: 1.0} if only in evaluate_ids else {}
        return [dict(row) for _ in range(b)]

    dists: dict[int, np.ndarray] = {}
    weights: dict[int, np.ndarray] = {}
    sorted_dists: dict[int, np.ndarray] = {}
    cum_weights: dict[int, np.ndarray] = {}
    for oid in candidate_ids:
        obj = dataset[oid]
        diff = obj.instances[None, :, :] - Q[:, None, :]
        d = np.sqrt(np.einsum("bmd,bmd->bm", diff, diff))
        order = np.argsort(d, axis=1)
        w = np.broadcast_to(obj.weights, d.shape)
        dists[oid] = d
        weights[oid] = obj.weights
        sorted_dists[oid] = np.take_along_axis(d, order, axis=1)
        cum_weights[oid] = np.concatenate(
            [
                np.zeros((b, 1)),
                np.cumsum(np.take_along_axis(w, order, axis=1), axis=1),
            ],
            axis=1,
        )

    def survival(oid: int, row: int, radii: np.ndarray) -> np.ndarray:
        sd = sorted_dists[oid][row]
        cw = cum_weights[oid][row]
        le = cw[np.searchsorted(sd, radii, side="right")]
        lt = cw[np.searchsorted(sd, radii, side="left")]
        return 1.0 - 0.5 * (le + lt)

    out: list[dict[int, float]] = []
    for row in range(b):
        probs: dict[int, float] = {}
        for oid in evaluate_ids:
            radii = dists[oid][row]
            prod = np.ones(len(radii))
            for other in candidate_ids:
                if other == oid:
                    continue
                prod *= survival(other, row, radii)
            probs[oid] = float(
                np.clip(np.dot(weights[oid], prod), 0.0, 1.0)
            )
        out.append(probs)
    return out


def reference_knn_probabilities(dataset, ids, q, k):
    """The seed ``KNNEngine._probabilities`` (Poisson-binomial DP)."""
    q = np.asarray(q, dtype=np.float64)
    if not ids:
        return {}
    if len(ids) <= k:
        return {oid: 1.0 for oid in ids}

    sorted_d: dict[int, np.ndarray] = {}
    cum_w: dict[int, np.ndarray] = {}
    dists: dict[int, np.ndarray] = {}
    weights: dict[int, np.ndarray] = {}
    for oid in ids:
        obj = dataset[oid]
        d = obj.distance_samples(q)
        order = np.argsort(d)
        dists[oid] = d
        weights[oid] = obj.weights
        sorted_d[oid] = d[order]
        cum_w[oid] = np.concatenate(
            ([0.0], np.cumsum(obj.weights[order]))
        )

    def closer_prob(oid: int, radii: np.ndarray) -> np.ndarray:
        sd = sorted_d[oid]
        cw = cum_w[oid]
        lt = cw[np.searchsorted(sd, radii, side="left")]
        le = cw[np.searchsorted(sd, radii, side="right")]
        return 0.5 * (lt + le)

    out: dict[int, float] = {}
    for oid in ids:
        radii = dists[oid]
        m = len(radii)
        others = [x for x in ids if x != oid]
        p = np.stack([closer_prob(x, radii) for x in others])
        dp = np.zeros((k, m))
        dp[0] = 1.0
        for t in range(len(others)):
            pt = p[t]
            for j in range(min(t + 1, k - 1), 0, -1):
                dp[j] = dp[j] * (1.0 - pt) + dp[j - 1] * pt
            dp[0] = dp[0] * (1.0 - pt)
        tail = dp.sum(axis=0)
        out[oid] = float(np.clip(np.dot(weights[oid], tail), 0.0, 1.0))
    return out


def reference_groupnn_probabilities(dataset, ids, q, aggregate):
    """The seed ``GroupNNEngine._probabilities``."""
    aggregators = {
        "sum": lambda d: d.sum(axis=-1),
        "max": lambda d: d.max(axis=-1),
        "min": lambda d: d.min(axis=-1),
    }
    if not ids:
        return {}
    if len(ids) == 1:
        return {ids[0]: 1.0}
    agg = aggregators[aggregate]

    adists: dict[int, np.ndarray] = {}
    weights: dict[int, np.ndarray] = {}
    sorted_d: dict[int, np.ndarray] = {}
    cum_w: dict[int, np.ndarray] = {}
    for oid in ids:
        obj = dataset[oid]
        diff = obj.instances[:, None, :] - q[None, :, :]
        d = agg(np.sqrt(np.einsum("mqd,mqd->mq", diff, diff)))
        order = np.argsort(d)
        adists[oid] = d
        weights[oid] = obj.weights
        sorted_d[oid] = d[order]
        cum_w[oid] = np.concatenate(
            ([0.0], np.cumsum(obj.weights[order]))
        )

    def survival(oid: int, radii: np.ndarray) -> np.ndarray:
        sd = sorted_d[oid]
        cw = cum_w[oid]
        le = cw[np.searchsorted(sd, radii, side="right")]
        lt = cw[np.searchsorted(sd, radii, side="left")]
        return 1.0 - 0.5 * (le + lt)

    out: dict[int, float] = {}
    for oid in ids:
        radii = adists[oid]
        prod = np.ones(len(radii))
        for other in ids:
            if other == oid:
                continue
            prod *= survival(other, radii)
        out[oid] = float(np.clip(np.dot(weights[oid], prod), 0.0, 1.0))
    return out


def reference_reverse_instance_probability(dataset, oid, query):
    """The seed ``ReverseNNEngine._instance_probability``."""
    obj = dataset[oid]
    others = [
        x for x in dataset if x.oid != oid and x.oid != query.oid
    ]

    diff = obj.instances[:, None, :] - query.instances[None, :, :]
    dq = np.sqrt(np.einsum("mnd,mnd->mn", diff, diff))

    total = 0.0
    for m, (p, w) in enumerate(zip(obj.instances, obj.weights)):
        radii = dq[m]
        prod = np.ones(len(radii))
        for x in others:
            dx = np.sqrt(
                np.einsum("nd,nd->n", x.instances - p, x.instances - p)
            )
            order = np.argsort(dx)
            sd = dx[order]
            cw = np.concatenate(([0.0], np.cumsum(x.weights[order])))
            le = cw[np.searchsorted(sd, radii, side="right")]
            lt = cw[np.searchsorted(sd, radii, side="left")]
            prod *= 1.0 - 0.5 * (le + lt)
            if not prod.any():
                break
        total += w * float(np.dot(query.weights, prod))
    return float(np.clip(total, 0.0, 1.0))


def reference_probability_bounds(dataset, candidate_ids, query, n_bins=8):
    """The seed ``probability_bounds`` (pure-Python surv_above loops).

    Returns ``oid -> (lower, upper)`` tuples so the oracle has no
    dependency on the library's ``ProbabilityBounds`` validation.
    """
    q = np.asarray(query, dtype=np.float64)
    if not candidate_ids:
        return {}
    if len(candidate_ids) == 1:
        return {candidate_ids[0]: (1.0, 1.0)}
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")

    edges: dict[int, np.ndarray] = {}
    masses: dict[int, np.ndarray] = {}
    for oid in candidate_ids:
        obj = dataset[oid]
        d = np.sort(obj.distance_samples(q))
        qs = np.linspace(0.0, 1.0, n_bins + 1)
        e = np.quantile(d, qs)
        e[0] = d[0]
        e[-1] = d[-1]
        w = np.asarray(obj.weights)
        order = np.argsort(obj.distance_samples(q))
        dw = w[order]
        ds = obj.distance_samples(q)[order]
        mass = np.empty(n_bins)
        for b in range(n_bins):
            lo, hi = e[b], e[b + 1]
            if b == n_bins - 1:
                sel = (ds >= lo) & (ds <= hi)
            else:
                sel = (ds >= lo) & (ds < hi)
            mass[b] = dw[sel].sum()
        edges[oid] = e
        masses[oid] = mass

    def surv_above(oid: int, r: float, optimistic: bool) -> float:
        e = edges[oid]
        m = masses[oid]
        total = 0.0
        for b in range(len(m)):
            lo, hi = e[b], e[b + 1]
            if optimistic:
                if hi > r:
                    total += m[b]
            else:
                if lo > r:
                    total += m[b]
        return min(1.0, total)

    out: dict[int, tuple[float, float]] = {}
    for oid in candidate_ids:
        e = edges[oid]
        m = masses[oid]
        lo_total = 0.0
        hi_total = 0.0
        for b in range(len(m)):
            r_lo, r_hi = e[b], e[b + 1]
            opt = 1.0
            pes = 1.0
            for other in candidate_ids:
                if other == oid:
                    continue
                opt *= surv_above(other, r_lo, optimistic=True)
                pes *= surv_above(other, r_hi, optimistic=False)
            hi_total += m[b] * opt
            lo_total += m[b] * pes
        out[oid] = (float(min(lo_total, 1.0)), float(min(hi_total, 1.0)))
    return out
