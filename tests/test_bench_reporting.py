"""Tests for figure formatting (repro.bench.reporting)."""

import pytest

from repro.bench.figures import FigureResult
from repro.bench.reporting import format_figure, format_rows


@pytest.fixture()
def result():
    r = FigureResult(
        figure="Fig X",
        title="Example figure",
        columns=("size", "index", "tq_ms"),
        notes="a note",
    )
    r.add(size=100, index="R-tree", tq_ms=1.23456)
    r.add(size=100, index="PV-index", tq_ms=0.000123)
    return r


class TestFormatRows:
    def test_header_and_rule(self, result):
        text = format_rows(result.columns, result.rows)
        lines = text.splitlines()
        assert "size" in lines[0] and "tq_ms" in lines[0]
        assert set(lines[1]) <= {"-", "+"}
        assert len(lines) == 2 + len(result.rows)

    def test_small_floats_use_scientific(self, result):
        text = format_rows(result.columns, result.rows)
        assert "1.230e-04" in text

    def test_columns_aligned(self, result):
        lines = format_rows(result.columns, result.rows).splitlines()
        pipes = [
            [i for i, c in enumerate(line) if c == "|"]
            for line in lines
            if "|" in line
        ]
        assert all(p == pipes[0] for p in pipes)

    def test_empty_rows(self):
        text = format_rows(("a", "b"), [])
        assert "a" in text and "b" in text

    def test_tuple_values(self):
        text = format_rows(("vals",), [{"vals": (1, 2, 3)}])
        assert "(1, 2, 3)" in text


class TestFormatFigure:
    def test_contains_heading_and_note(self, result):
        text = format_figure(result)
        assert text.startswith("Fig X: Example figure")
        assert "note: a note" in text

    def test_no_note_line_when_empty(self, result):
        bare = FigureResult(
            figure="Fig Y", title="t", columns=("a",)
        )
        bare.add(a=1)
        assert "note:" not in format_figure(bare)


class TestFigureResult:
    def test_add_validates_columns(self, result):
        with pytest.raises(ValueError, match="missing columns"):
            result.add(size=1)

    def test_series(self, result):
        assert result.series("index") == ["R-tree", "PV-index"]
