"""Tests for the packed InstanceStore and its incremental maintenance."""

import numpy as np
import pytest

from repro import synthetic_dataset
from repro.geometry import Rect
from repro.uncertain import InstanceStore, UncertainDataset, UncertainObject


def _make_object(oid: int, rng, m: int | None = None) -> UncertainObject:
    m = m if m is not None else int(rng.integers(1, 9))
    center = rng.uniform(10.0, 90.0, 2)
    inst = center + rng.uniform(-3.0, 3.0, (m, 2))
    w = rng.uniform(0.1, 1.0, m)
    w /= w.sum()
    return UncertainObject(
        oid, Rect(inst.min(axis=0), inst.max(axis=0)), inst, w
    )


def _variable_dataset(seed: int, n: int = 10) -> UncertainDataset:
    rng = np.random.default_rng(seed)
    objs = [_make_object(oid, rng) for oid in range(n)]
    return UncertainDataset(objs, domain=Rect([-20, -20], [120, 120]))


class TestLayout:
    def test_packed_layout_matches_objects(self):
        ds = _variable_dataset(0)
        store = ds.instance_store()
        assert len(store) == len(ds)
        assert store.total_samples == sum(
            o.n_instances for o in ds
        )
        assert store.matches_dataset()
        # Offsets delimit each object's rows in slot order.
        offsets = store.offsets
        assert offsets[0] == 0
        assert offsets[-1] == store.total_samples
        for oid in ds.ids:
            slot = store.slot_of(oid)
            lo, hi = offsets[slot], offsets[slot + 1]
            np.testing.assert_array_equal(
                store.instances[lo:hi], ds[oid].instances
            )
            np.testing.assert_array_equal(
                store.weights[lo:hi], ds[oid].weights
            )

    def test_store_is_cached_on_the_dataset(self):
        ds = _variable_dataset(1)
        assert ds.instance_store() is ds.instance_store()

    def test_gather_uniform(self):
        ds = synthetic_dataset(n=12, dims=2, n_samples=7, seed=2)
        block = ds.instance_store().gather(ds.ids[:5])
        assert block.instances.shape == (5, 7, 2)
        assert block.uniform
        for i, oid in enumerate(ds.ids[:5]):
            np.testing.assert_array_equal(
                block.instances[i], ds[oid].instances
            )
            np.testing.assert_array_equal(
                block.weights[i], ds[oid].weights
            )

    def test_gather_padding_weighs_zero(self):
        ds = _variable_dataset(3)
        ids = ds.ids
        block = ds.instance_store().gather(ids)
        m_max = max(ds[oid].n_instances for oid in ids)
        assert block.instances.shape == (len(ids), m_max, 2)
        for i, oid in enumerate(ids):
            m = ds[oid].n_instances
            assert block.lengths[i] == m
            np.testing.assert_array_equal(
                block.instances[i, :m], ds[oid].instances
            )
            # Padding replicates the last row with weight exactly 0.
            assert (block.weights[i, m:] == 0.0).all()
            np.testing.assert_array_equal(
                block.instances[i, m:],
                np.broadcast_to(
                    ds[oid].instances[-1], (m_max - m, 2)
                ),
            )
            # Weight mass is exactly the object's.
            assert block.weights[i].sum() == pytest.approx(1.0)


class TestIncrementalMaintenance:
    def test_insert_matches_scratch_rebuild(self):
        ds = _variable_dataset(4)
        store = ds.instance_store()
        rng = np.random.default_rng(40)
        for oid in range(100, 106):
            ds.insert(_make_object(oid, rng))
            assert store.epoch == ds.epoch
            assert store.matches_dataset()

    def test_delete_matches_scratch_rebuild(self):
        ds = _variable_dataset(5, n=12)
        store = ds.instance_store()
        rng = np.random.default_rng(50)
        for _ in range(8):
            victim = int(rng.choice(ds.ids))
            ds.delete(victim)
            assert store.epoch == ds.epoch
            assert store.matches_dataset()
            assert victim not in [
                oid for oid in ds.ids
            ] and victim not in ds

    def test_interleaved_churn(self):
        ds = _variable_dataset(6, n=8)
        store = ds.instance_store()
        rng = np.random.default_rng(60)
        next_oid = 1000
        for step in range(40):
            if rng.random() < 0.5 or len(ds) <= 2:
                ds.insert(_make_object(next_oid, rng))
                next_oid += 1
            else:
                ds.delete(int(rng.choice(ds.ids)))
        assert store.matches_dataset()
        assert store.epoch == ds.epoch
        # Gathers reflect the live contents.
        ids = ds.ids[:5]
        block = store.gather(ids)
        for i, oid in enumerate(ids):
            m = ds[oid].n_instances
            np.testing.assert_array_equal(
                block.instances[i, :m], ds[oid].instances
            )

    def test_lazy_store_not_built_by_mutation(self):
        ds = _variable_dataset(7)
        rng = np.random.default_rng(70)
        # No store requested yet: mutations must not create one.
        ds.insert(_make_object(500, rng))
        assert ds._store is None
        store = ds.instance_store()
        assert store.matches_dataset()


class TestEpochInvalidation:
    def test_detached_store_raises_after_bypassed_mutation(self):
        ds = _variable_dataset(8)
        detached = InstanceStore(ds)  # standalone, not dataset-owned
        assert detached.gather(ds.ids[:2]).instances.shape[0] == 2
        ds.insert(_make_object(900, np.random.default_rng(80)))
        with pytest.raises(ValueError, match="stale"):
            detached.gather(ds.ids[:2])

    def test_owned_store_never_goes_stale(self):
        ds = _variable_dataset(9)
        store = ds.instance_store()
        ds.insert(_make_object(901, np.random.default_rng(90)))
        block = store.gather([901])
        np.testing.assert_array_equal(
            block.instances[0, : ds[901].n_instances],
            ds[901].instances,
        )

    def test_engine_answers_track_mutations_through_store(self):
        # End to end: kernel answers over the maintained store equal
        # answers over a freshly-built dataset with the same contents.
        from repro.core import qualification_probabilities

        ds = _variable_dataset(10)
        ds.instance_store()  # build before the churn
        rng = np.random.default_rng(100)
        for oid in range(2000, 2004):
            ds.insert(_make_object(oid, rng))
        ds.delete(ds.ids[0])
        fresh = UncertainDataset(list(ds), domain=ds.domain)
        q = np.array([50.0, 50.0])
        ids = ds.ids[:8]
        a = qualification_probabilities(ds, ids, q)
        b = qualification_probabilities(fresh, ids, q)
        assert a.keys() == b.keys()
        for oid in a:
            assert a[oid] == pytest.approx(b[oid], abs=1e-12)
