"""Tests for probabilistic reverse NN queries (repro.core.reversenn)."""

import numpy as np
import pytest

from repro import UncertainObject, synthetic_dataset, uniform_pdf
from repro.core import ReverseNNEngine
from repro.geometry import Rect
from repro.uncertain import UncertainDataset


def point_object(oid, coords):
    p = np.asarray(coords, dtype=np.float64)
    return UncertainObject(
        oid=oid,
        region=Rect.from_point(p),
        instances=p[None, :],
        weights=np.array([1.0]),
    )


def box_object(oid, center, half, n_samples=40, seed=0):
    region = Rect.from_center(center, [half] * len(center))
    instances, weights = uniform_pdf(
        region, n_samples, np.random.default_rng(seed)
    )
    return UncertainObject(
        oid=oid, region=region, instances=instances, weights=weights
    )


class TestReverseNNCertainPoints:
    """With point pdfs, PRNN reduces to classic reverse NN."""

    @pytest.fixture()
    def line_dataset(self):
        # Points on a line at 0, 10, 25, 45: classic RNN structure.
        domain = Rect.cube(-10.0, 100.0, 1)
        objects = [
            point_object(0, [0.0]),
            point_object(1, [10.0]),
            point_object(2, [25.0]),
            point_object(3, [45.0]),
        ]
        return UncertainDataset(objects, domain=domain)

    def test_classic_rnn_semantics(self, line_dataset):
        engine = ReverseNNEngine(line_dataset)
        # Query object at position 11: NN of 1 (dist 1) certainly, NN of
        # 2 (dist 14 vs 2's NN which is 3 at dist 20, and 1 at dist 15).
        query = point_object(99, [11.0])
        result = engine.query(query)
        assert result.probabilities.get(1, 0.0) == pytest.approx(1.0)
        # Object 0's NN is 1 (dist 10) not the query (dist 11).
        assert result.probabilities.get(0, 0.0) == 0.0
        # Object 2's NN: 1 at dist 15 vs query at dist 14 -> query wins.
        assert result.probabilities.get(2, 0.0) == pytest.approx(1.0)
        # Object 3's NN: 2 at dist 20 vs query at dist 34 -> not query.
        assert result.probabilities.get(3, 0.0) == 0.0

    def test_query_in_dataset_excluded_from_answers(self, line_dataset):
        engine = ReverseNNEngine(line_dataset)
        member = line_dataset[1]
        result = engine.query(member)
        assert 1 not in result.probabilities
        assert 1 not in result.candidate_ids

    def test_two_object_database_always_answers(self):
        domain = Rect.cube(0.0, 100.0, 2)
        dataset = UncertainDataset(
            [point_object(0, [20.0, 20.0])], domain=domain
        )
        engine = ReverseNNEngine(dataset)
        query = point_object(1, [80.0, 80.0])
        result = engine.query(query)
        # With no competitors, the query is certainly object 0's NN.
        assert result.probabilities[0] == pytest.approx(1.0)


class TestReverseNNFilter:
    def test_filter_is_conservative(self):
        """Step-1 never drops an object with non-zero probability."""
        dataset = synthetic_dataset(
            n=40, dims=2, u_max=1500.0, n_samples=40, seed=8
        )
        engine = ReverseNNEngine(dataset)
        query = box_object(999, [5000.0, 5000.0], 400.0, seed=5)
        candidates = set(engine.candidates(query))
        result = engine.query(query)
        positive = {
            oid for oid, p in result.probabilities.items() if p > 0
        }
        assert positive <= candidates

    def test_filter_prunes_far_objects(self):
        """An object wedged behind a closer one must be pruned."""
        domain = Rect.cube(0.0, 1000.0, 2)
        objects = [
            point_object(0, [500.0, 500.0]),  # near the query
            point_object(1, [504.0, 500.0]),  # o0's certain NN shield
            point_object(2, [900.0, 900.0]),  # far away
        ]
        dataset = UncertainDataset(objects, domain=domain)
        engine = ReverseNNEngine(dataset)
        query = point_object(99, [100.0, 100.0])
        candidates = engine.candidates(query)
        # Object 0's distance to 1 is 4; to the query ~565: never RNN.
        assert 0 not in candidates
        result = engine.query(query)
        assert result.probabilities.get(0, 0.0) == 0.0

    def test_probabilities_in_unit_interval(self):
        dataset = synthetic_dataset(
            n=25, dims=2, u_max=2000.0, n_samples=30, seed=14
        )
        engine = ReverseNNEngine(dataset)
        query = box_object(999, [5000.0, 5000.0], 800.0, seed=6)
        result = engine.query(query)
        for oid, p in result.probabilities.items():
            assert 0.0 <= p <= 1.0, (oid, p)


class TestReverseNNUncertain:
    def test_partial_probability_with_overlap(self):
        """A contested object yields a probability strictly in (0, 1)."""
        domain = Rect.cube(0.0, 100.0, 1)
        # Object 0 uniform on [40, 60]; query at 35; competitor at 65.
        # Positions of 0 below 50 are closer to the query, above 50
        # closer to the competitor -> probability ~0.5.
        objects = [
            box_object(0, [50.0], 10.0, n_samples=400, seed=1),
            point_object(1, [65.0]),
        ]
        dataset = UncertainDataset(objects, domain=domain)
        engine = ReverseNNEngine(dataset)
        query = point_object(99, [35.0])
        result = engine.query(query)
        assert 0.3 < result.probabilities[0] < 0.7

    def test_times_accumulate(self):
        dataset = synthetic_dataset(
            n=15, dims=2, u_max=500.0, n_samples=20, seed=2
        )
        engine = ReverseNNEngine(dataset)
        query = box_object(999, [5000.0, 5000.0], 100.0)
        engine.query(query)
        assert engine.times.queries == 1
        assert engine.times.total > 0.0
