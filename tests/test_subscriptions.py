"""Continuous queries: the subscription differential oracle + lifecycle.

The acceptance bar for the standing-subscription subsystem:

* **Differential oracle** — for every one of the seven verbs, over an
  interleaved insert/delete workload, the revision stream must be
  bit-identical to serially re-running the query at every epoch and
  emitting only on change.  Suppressed epochs must provably not have
  changed the answer (checked against the serial replay), both inline
  and under ``db.serve()``.
* **Eager equivalence** — a filter-disabled (``eager=True``)
  subscription must produce the identical revision stream, so the
  relevance filter is pure optimization, never semantics.
* **Lifecycle** — bounded queues overflow into
  :class:`RevisionOverflow` after draining, unsubscribe (including
  mid-mutation, from another thread) detaches cleanly, double close is
  a no-op, and closing the database wakes blocked consumers.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import Rect, UncertainObject
from repro.api import Database
from repro.service import RevisionOverflow
from repro.service.subscriptions import answers_equal
from repro.testing import FaultPlan, FaultRule
from repro.uncertain import UncertainDataset, uniform_pdf

DOMAIN = Rect.cube(0.0, 1000.0, 2)
N_OBJECTS = 24
N_INSTANCES = 6
N_MUTATIONS = 18
QUERY = [500.0, 500.0]
GROUP = [[400.0, 400.0], [600.0, 600.0]]


def make_object(
    oid: int,
    rng: np.random.Generator,
    center=None,
    half: float | None = None,
) -> UncertainObject:
    center = (
        rng.uniform(100.0, 900.0, size=2)
        if center is None
        else np.asarray(center, dtype=float)
    )
    half = half if half is not None else float(rng.uniform(5.0, 40.0))
    region = Rect(
        np.maximum(center - half, DOMAIN.lo),
        np.minimum(center + half, DOMAIN.hi),
    )
    instances, weights = uniform_pdf(region, N_INSTANCES, rng)
    return UncertainObject(oid, region, instances, weights)


def make_initial(seed: int = 11) -> list[UncertainObject]:
    rng = np.random.default_rng(seed)
    return [make_object(i, rng) for i in range(N_OBJECTS)]


def apply_mutation(db: Database, i: int, live: dict) -> None:
    """Deterministic interleaved insert/delete workload."""
    rng = np.random.default_rng(40_000 + i)
    if len(live) > N_OBJECTS // 2 and rng.random() < 0.45:
        victim = sorted(live)[int(rng.integers(len(live)))]
        db.delete(victim)
        live.pop(victim)
    else:
        # Half the inserts land near the query hot spot so revisions
        # actually fire; the rest exercise suppression.
        center = (
            rng.uniform(420.0, 580.0, size=2)
            if rng.random() < 0.5
            else None
        )
        obj = make_object(1000 + i, rng, center=center)
        db.insert(obj)
        live[obj.oid] = obj


def reference_answer(live: dict, kind: str, query, params: tuple):
    """Serial replay: the answer at this exact object set, brute force."""
    ds = UncertainDataset(list(live.values()), domain=DOMAIN)
    with Database(ds, indexes=()) as ref:
        return ref._execute_group(kind, [query], params, None)[0].answer


def subscription_specs(objs):
    """One subscription per verb (query, extra params)."""
    return [
        ("nn", QUERY, {}),
        ("knn", QUERY, {"k": 3}),
        ("topk", QUERY, {"k": 2}),
        ("threshold", QUERY, {"p": 0.2}),
        ("group_nn", GROUP, {"aggregate": "sum"}),
        ("reverse_nn", objs[0], {}),
        ("expected_nn", QUERY, {}),
    ]


class TestDifferentialOracle:
    """Revision stream == serial per-epoch replay, emit-on-change."""

    def _run(self, serve: bool, **subscribe_kwargs):
        objs = make_initial()
        live = {o.oid: o for o in objs}
        db = Database(
            UncertainDataset(list(objs), domain=DOMAIN), indexes=()
        )
        try:
            if serve:
                db.serve(workers=2)
            subs = [
                db.subscribe(kind, query, **params, **subscribe_kwargs)
                for kind, query, params in subscription_specs(objs)
            ]
            streams = {sub.sid: [] for sub in subs}
            prev = {}
            for sub in subs:
                baseline = sub.poll()
                assert baseline is not None and baseline.changed is False
                assert baseline.epoch == db.epoch
                prev[sub.sid] = baseline.answer
                streams[sub.sid].append(baseline)
            for i in range(N_MUTATIONS):
                apply_mutation(db, i, live)
                for sub in subs:
                    want = reference_answer(
                        live, sub.kind, sub.query, sub.params
                    )
                    revision = sub.poll()
                    if revision is not None:
                        # Emitted: tagged with exactly this epoch,
                        # flagged changed, bit-identical to the serial
                        # replay, and the only revision of the epoch.
                        assert revision.epoch == db.epoch
                        assert revision.changed
                        assert answers_equal(
                            sub.kind, revision.answer, want
                        ), f"{sub.kind}: revision != serial replay"
                        assert not answers_equal(
                            sub.kind, prev[sub.sid], want
                        ), f"{sub.kind}: emitted but answer unchanged"
                        assert sub.poll() is None
                        streams[sub.sid].append(revision)
                    else:
                        # Suppressed: the answer must not have changed.
                        assert answers_equal(
                            sub.kind, prev[sub.sid], want
                        ), f"{sub.kind}: suppression hid a change"
                    prev[sub.sid] = want
            for sub in subs:
                # Every verb must have both emitted and suppressed at
                # least once, or the workload proves nothing.
                assert sub.revisions_emitted >= 2, sub.kind
                if sub.kind != "reverse_nn" and not sub.eager:
                    assert sub.revisions_suppressed >= 1, sub.kind
            return subs, streams
        finally:
            db.close()

    def test_inline_all_verbs(self):
        self._run(serve=False)

    def test_served_all_verbs(self):
        self._run(serve=True)

    def test_eager_stream_is_identical(self):
        # eager=True disables the relevance filter; the revision
        # stream (epochs + answers) must not change.
        _, filtered = self._run(serve=False)
        _, eager = self._run(serve=False, eager=True)
        assert sorted(filtered) == sorted(eager)
        for sid in filtered:
            a, b = filtered[sid], eager[sid]
            assert [r.epoch for r in a] == [r.epoch for r in b]
            for ra, rb in zip(a, b):
                assert answers_equal(ra.kind, ra.answer, rb.answer)

    def test_revision_stats_are_stamped(self):
        objs = make_initial()
        live = {o.oid: o for o in objs}
        with Database(
            UncertainDataset(list(objs), domain=DOMAIN), indexes=()
        ) as db:
            sub = db.subscribe("nn", QUERY)
            baseline = sub.poll()
            assert baseline.stats.revisions_emitted == 1
            assert baseline.stats.queries >= 1
            emitted = []
            for i in range(N_MUTATIONS):
                apply_mutation(db, i, live)
                revision = sub.poll()
                if revision is not None:
                    emitted.append(revision)
            assert emitted, "workload produced no revisions"
            for revision in emitted:
                assert revision.stats.revisions_emitted == 1
                assert (
                    revision.stats.revisions_suppressed
                    == revision.suppressed_since_last
                )
            total = sub.revisions_emitted + sub.revisions_suppressed
            assert total == N_MUTATIONS + 1  # every epoch accounted for


class TestLifecycle:
    def _small_db(self) -> tuple[Database, dict]:
        objs = make_initial(seed=5)
        live = {o.oid: o for o in objs}
        db = Database(
            UncertainDataset(list(objs), domain=DOMAIN), indexes=()
        )
        return db, live

    def test_overflow_backpressure(self):
        db, _live = self._small_db()
        rng = np.random.default_rng(0)
        with db:
            sub = db.subscribe("nn", QUERY, max_pending=2)
            assert sub.poll().changed is False
            # Each insert is closer to the query point than the last:
            # every epoch changes the best answer and emits.
            for i, half in enumerate((4.0, 3.0, 2.0, 1.0)):
                db.insert(
                    make_object(
                        9000 + i, rng, center=QUERY, half=half
                    )
                )
            # Queue of 2 filled, the next emission overflowed: closed
            # and detached, buffered revisions still readable.
            assert sub.overflowed
            assert not sub.active
            assert db.subscriptions.live == 0
            assert sub.poll() is not None
            assert sub.poll() is not None
            with pytest.raises(RevisionOverflow, match="lagging"):
                sub.poll()
            with pytest.raises(RevisionOverflow):
                list(sub.revisions(timeout=0.01))
            # The database itself is unaffected.
            db.insert(make_object(9100, rng))

    def test_unsubscribe_detaches_listener(self):
        db, _live = self._small_db()
        with db:
            baseline_listeners = len(db.dataset._listeners)
            a = db.subscribe("nn", QUERY)
            b = db.subscribe("topk", QUERY, k=2)
            assert len(db.dataset._listeners) == baseline_listeners + 1
            a.unsubscribe()
            assert db.subscriptions.live == 1
            b.unsubscribe()
            assert db.subscriptions.live == 0
            # Last unsubscribe removes the mutation listener entirely.
            assert len(db.dataset._listeners) == baseline_listeners
            # Idempotent.
            a.unsubscribe()

    def test_unsubscribe_during_mutation_race(self):
        db, live = self._small_db()
        errors: list[Exception] = []
        stop = threading.Event()

        def mutate():
            try:
                i = 0
                while not stop.is_set():
                    apply_mutation(db, i, live)
                    i += 1
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def churn():
            try:
                rng = np.random.default_rng(1)
                for _ in range(25):
                    sub = db.subscribe(
                        "nn", rng.uniform(200.0, 800.0, size=2)
                    )
                    sub.poll()
                    sub.unsubscribe()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        with db:
            mutator = threading.Thread(target=mutate)
            churners = [
                threading.Thread(target=churn) for _ in range(3)
            ]
            mutator.start()
            for t in churners:
                t.start()
            for t in churners:
                t.join()
            stop.set()
            mutator.join()
            assert not errors, errors
            assert db.subscriptions.live == 0

    def test_double_close_with_subscriptions(self):
        # Regression: close() must detach the subscription listener it
        # owns, and a second close() must be a clean no-op.
        db, _live = self._small_db()
        sub = db.subscribe("nn", QUERY)
        assert sub.poll() is not None
        db.close()
        assert not sub.active
        assert db.dataset._listeners == []
        db.close()  # double close: no-op, no raise
        assert db.dataset._listeners == []

    def test_close_wakes_blocked_consumer(self):
        db, _live = self._small_db()
        sub = db.subscribe("nn", QUERY)
        assert sub.poll() is not None
        seen: list = []

        def consume():
            for revision in sub.revisions(timeout=10.0):
                seen.append(revision)  # pragma: no cover - none expected

        consumer = threading.Thread(target=consume)
        consumer.start()
        db.close()
        consumer.join(timeout=5.0)
        assert not consumer.is_alive(), "close() left the consumer blocked"
        assert seen == []

    def test_revisions_iterator_receives_pushes(self):
        db, _live = self._small_db()
        rng = np.random.default_rng(2)
        with db:
            sub = db.subscribe("nn", QUERY)
            got: list = []

            def consume():
                for revision in sub.revisions(timeout=10.0):
                    got.append(revision)
                    if revision.changed:
                        return

            consumer = threading.Thread(target=consume)
            consumer.start()
            db.insert(make_object(9000, rng, center=QUERY, half=2.0))
            consumer.join(timeout=10.0)
            assert not consumer.is_alive()
            assert [r.changed for r in got] == [False, True]
            assert got[-1].answer.best == 9000

    def test_subscribe_after_close_raises(self):
        db, _live = self._small_db()
        db.close()
        with pytest.raises(RuntimeError, match="closed"):
            db.subscribe("nn", QUERY)

    def test_describe_reports_subscription_state(self):
        db, live = self._small_db()
        with db:
            assert db.describe()["subscriptions"]["live"] == 0
            sub = db.subscribe("knn", QUERY, k=2)
            sub.poll()
            for i in range(4):
                apply_mutation(db, i, live)
            info = db.describe()
            state = info["subscriptions"]
            assert state["live"] == 1
            (entry,) = state["entries"]
            assert entry["kind"] == "knn"
            assert entry["params"] == {"k": 2}
            assert entry["emitted"] + entry["suppressed"] >= 4
            assert (
                state["revisions_emitted"]
                + state["revisions_suppressed"]
                >= 4
            )
            snap = db.subscriptions.stats_snapshot()
            assert snap.subscriptions_live == 1

    def test_direct_dataset_mutation_catches_up_on_poll(self):
        # Mutations bypassing the Database still reach consumers: the
        # next poll coalesces the backlog into one revision tagged
        # with the current epoch.
        db, _live = self._small_db()
        rng = np.random.default_rng(3)
        with db:
            sub = db.subscribe("nn", QUERY)
            assert sub.poll().changed is False
            db.dataset.insert(
                make_object(9000, rng, center=QUERY, half=3.0)
            )
            db.dataset.insert(
                make_object(9001, rng, center=QUERY, half=1.0)
            )
            revision = sub.poll()
            assert revision is not None
            assert revision.epoch == db.epoch
            assert revision.answer.best == 9001
            assert sub.poll() is None

    def test_unknown_kind_and_bad_max_pending(self):
        db, _live = self._small_db()
        with db:
            with pytest.raises(KeyError, match="unknown query kind"):
                db.subscribe("nearest", QUERY)
            with pytest.raises(ValueError, match="max_pending"):
                db.subscribe("nn", QUERY, max_pending=0)


class TestUVLocality:
    @staticmethod
    def _same_distribution(a, b, tol: float = 1e-9) -> bool:
        # Retrievers may keep different negligible-probability
        # candidates; compare the distributions, not the id sets.
        ids = set(a.probabilities) | set(b.probabilities)
        return all(
            abs(
                a.probabilities.get(i, 0.0) - b.probabilities.get(i, 0.0)
            )
            <= tol
            for i in ids
        )

    def test_uv_retriever_stream_matches_brute(self):
        # The same workload through a forced-UV subscription and a
        # forced-brute eager one: revisions on the same epochs with the
        # same probability distribution, and the UV handle stays the
        # incremental maintenance carrier.
        objs = make_initial(seed=9)
        live = {o.oid: o for o in objs}
        with Database(
            UncertainDataset(list(objs), domain=DOMAIN), indexes=("uv",)
        ) as db:
            uv_sub = db.subscribe("nn", QUERY, retriever="uv")
            brute_sub = db.subscribe(
                "nn", QUERY, retriever="brute", eager=True
            )
            assert uv_sub.poll().changed is False
            brute_baseline = brute_sub.poll()
            assert brute_baseline.changed is False
            uv_stream, brute_stream = [], []
            for i in range(N_MUTATIONS):
                apply_mutation(db, i, live)
                if (a := uv_sub.poll()) is not None:
                    uv_stream.append(a)
                if (b := brute_sub.poll()) is not None:
                    brute_stream.append(b)
            assert uv_stream, "workload produced no UV revisions"
            # Every *material* brute-visible change must be visible
            # through UV at the same epoch with the same distribution.
            # (Either stream may additionally emit on churn among
            # negligible-probability candidates — retriever-specific.)
            uv_by_epoch = {r.epoch: r for r in uv_stream}
            prev = brute_baseline.answer
            material = 0
            for b in brute_stream:
                if self._same_distribution(prev, b.answer):
                    prev = b.answer
                    continue  # negligible churn: UV may suppress it
                prev = b.answer
                material += 1
                a = uv_by_epoch.get(b.epoch)
                assert a is not None, f"UV missed epoch {b.epoch}"
                assert self._same_distribution(a.answer, b.answer)
            assert material >= 1, "workload produced no material change"
            # The forced-UV plan really ran on the UV index.
            assert uv_sub._last_retriever == "uv"


# ----------------------------------------------------------------------
# Fault tolerance: worker death must not drop or duplicate revisions
# ----------------------------------------------------------------------
def test_process_pool_worker_death_still_emits_once_per_epoch():
    """Served subscription under injected worker kills (one mid-chunk,
    one mid-fence): the revision stream must stay exactly one revision
    per changed epoch, bit-identical to the serial replay — recovery
    re-dispatch and fence respawn are invisible to consumers."""
    objs = make_initial()
    live = {o.oid: o for o in objs}
    db = Database(
        UncertainDataset(list(objs), domain=DOMAIN), indexes=()
    )
    try:
        plan = FaultPlan(
            [
                FaultRule("proc.chunk", "kill", wid=0, after=1),
                FaultRule("proc.fence", "kill", wid=1, after=2),
            ]
        )
        server = db.serve(
            workers=2,
            mode="process",
            fault_plan=plan,
            stall_timeout=10.0,
        )
        sub = db.subscribe("nn", QUERY)
        baseline = sub.poll()
        assert baseline is not None and baseline.changed is False
        prev = baseline.answer
        seen_epochs = {baseline.epoch}
        for i in range(N_MUTATIONS):
            apply_mutation(db, i, live)
            db.nn(QUERY)  # served read: keeps chunks flowing over kills
            want = reference_answer(live, "nn", QUERY, ())
            revision = sub.poll()
            if revision is not None:
                assert revision.epoch == db.epoch
                assert revision.epoch not in seen_epochs, (
                    "duplicate revision for one epoch"
                )
                seen_epochs.add(revision.epoch)
                assert revision.changed
                assert answers_equal("nn", revision.answer, want)
                assert sub.poll() is None  # exactly one per epoch
            else:
                assert answers_equal("nn", prev, want), (
                    "suppression hid a change"
                )
            prev = want
        assert sub.revisions_emitted >= 2
        # Both injected kills actually recovered through respawns.
        assert server.recovery_snapshot()["worker_restarts"] >= 1
    finally:
        db.close()
