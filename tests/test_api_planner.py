"""Planner tests: cost-model preferences, calibration, epoch drift.

The satellite contract of the API PR: the planner must prefer the
PV-index at low dimensionality on large databases, fall back to brute
force (small or high-dimensional databases) or to the R-tree / UV-index
where the cost model says so, replan after mutations (epoch drift), and
report through ``db.explain`` exactly the retriever the query actually
executes with.
"""

import numpy as np
import pytest

from repro import synthetic_dataset
from repro.api import Database, Plan, Planner, PlanningError
from repro.engine import CostEstimate


def make_dataset(n, dims=2, seed=11):
    # Two instances per object: plan-only tests never run Step 2, so
    # generation stays cheap even at large n.
    return synthetic_dataset(
        n=n, dims=dims, u_max=60.0, n_samples=2, seed=seed
    )


# ----------------------------------------------------------------------
# Static preferences (no index ever built: explain() is plan-only)
# ----------------------------------------------------------------------
class TestStaticPreferences:
    @pytest.mark.parametrize("kind", ["nn", "topk", "threshold"])
    def test_prefers_pv_at_low_dims_large_n(self, kind):
        db = Database(make_dataset(8000, dims=2))
        plan = db.explain(kind)
        assert plan.retriever == "pv"
        assert db.built_indexes == ()  # planning built nothing

    @pytest.mark.parametrize("n", [50, 300])
    def test_prefers_brute_force_on_small_databases(self, n):
        db = Database(make_dataset(n, dims=2))
        plan = db.explain("nn")
        assert plan.retriever == "brute"
        # Brute force reads no index pages; that is part of the story.
        assert plan.estimates["brute"].page_reads == 0.0

    def test_falls_back_to_brute_at_high_dims(self):
        # Candidate sets blow up with dimensionality (Fig 9(e)/(f)):
        # the vectorized full scan wins over any leaf-list filter.
        db = Database(make_dataset(8000, dims=6))
        assert db.explain("nn").retriever == "brute"

    def test_prefers_rtree_when_pv_unavailable(self):
        db = Database(make_dataset(8000, dims=2), indexes=("rtree",))
        assert db.explain("nn").retriever == "rtree"

    def test_uv_index_only_eligible_in_2d(self):
        db3 = Database(make_dataset(200, dims=3))
        assert "uv" not in db3.explain("nn").scores
        with pytest.raises(KeyError):
            db3.index("uv")
        db2 = Database(make_dataset(200, dims=2))
        assert "uv" in db2.explain("nn").scores

    def test_scores_cover_every_eligible_handle(self):
        db = Database(make_dataset(400, dims=2))
        plan = db.explain("nn")
        assert set(plan.scores) == {"pv", "rtree", "uv", "brute"}
        assert set(plan.estimates) == set(plan.scores)
        chosen = plan.scores[plan.retriever]
        assert chosen == min(plan.scores.values())
        assert plan.cost == chosen
        assert "lowest estimated cost" in plan.reason


# ----------------------------------------------------------------------
# Fixed (policy) choices
# ----------------------------------------------------------------------
class TestFixedChoices:
    def test_knn_k_gt_1_is_brute(self):
        db = Database(make_dataset(8000, dims=2))
        assert db.explain("knn", k=1).retriever == "pv"
        plan = db.explain("knn", k=3)
        assert plan.retriever == "brute"
        assert "k > 1" in plan.reason

    def test_group_nn_aggregate_policy(self):
        db = Database(make_dataset(8000, dims=2))
        assert db.explain("group_nn", aggregate="sum").retriever == "brute"
        assert db.explain("group_nn", aggregate="min").retriever == "pv"

    def test_reverse_nn_reports_domination_step1(self):
        db = Database(make_dataset(300, dims=2))
        plan = db.explain("reverse_nn")
        assert plan.retriever == "none"
        assert "domination" in plan.reason
        assert plan.cost is not None and plan.cost > 0


# ----------------------------------------------------------------------
# Observed-cost calibration
# ----------------------------------------------------------------------
class TestCalibration:
    def test_observation_changes_the_pick(self):
        db = Database(make_dataset(300, dims=2))
        assert db.explain("nn").retriever == "brute"
        # Runtime feedback: the UV-index measured far cheaper, brute
        # far more expensive, than their static estimates.
        db.planner.observe("uv", "nn", 1e-6)
        db.planner.observe("brute", "nn", 5e-3)
        db.planner.invalidate()
        plan = db.explain("nn")
        assert plan.retriever == "uv"
        assert plan.estimates["uv"].source == "observed"

    def test_observation_is_an_ema(self):
        planner = Planner(ema_alpha=0.5)
        planner.observe("pv", "nn", 100e-6)
        planner.observe("pv", "nn", 200e-6)
        assert planner.observed_step1_us("pv", "nn") == pytest.approx(150.0)

    def test_queries_feed_observations_back(self):
        ds = make_dataset(60, seed=7)
        db = Database(ds)
        assert db.planner.observed_step1_us("brute", "nn") is None
        db.nn(ds.domain.center)
        assert db.planner.observed_step1_us("brute", "nn") is not None

    def test_step2_observation_is_an_ema(self):
        planner = Planner(ema_alpha=0.5)
        assert planner.observed_step2_us("nn") is None
        planner.observe_step2(
            "nn", 100e-6, gather_seconds=20e-6, eval_seconds=60e-6
        )
        planner.observe_step2(
            "nn", 200e-6, gather_seconds=40e-6, eval_seconds=120e-6
        )
        observed = planner.observed_step2_us("nn")
        assert observed["step2"] == pytest.approx(150.0)
        assert observed["gather"] == pytest.approx(30.0)
        assert observed["eval"] == pytest.approx(90.0)

    def test_observed_step2_replaces_the_static_seed(self):
        # Before any observation the score carries the static
        # quadratic seed; after, the observed EMA — visible as a
        # change in every retriever's total while the ranking basis
        # (step1) is untouched.
        db = Database(make_dataset(300, dims=2))
        before = db.explain("nn")
        assert before.step2_observed == {}
        db.planner.observe_step2(
            "nn", 1.0, gather_seconds=0.25, eval_seconds=0.75
        )
        db.planner.invalidate()
        after = db.explain("nn")
        assert after.step2_observed["step2"] == pytest.approx(1e6)
        assert after.step2_observed["gather"] == pytest.approx(0.25e6)
        assert after.step2_observed["eval"] == pytest.approx(0.75e6)
        # The (shared) step2 term moved every score by the same delta.
        deltas = {
            name: after.scores[name] - before.scores[name]
            for name in after.scores
        }
        assert len(set(round(d, 6) for d in deltas.values())) == 1
        # ... and the breakdown is surfaced by describe()/db.explain.
        assert "step2 1000000.0 us observed" in after.describe()

    def test_queries_feed_step2_observations_back(self):
        ds = make_dataset(60, seed=7)
        db = Database(ds)
        assert db.planner.observed_step2_us("nn") is None
        db.nn(ds.domain.center)
        observed = db.planner.observed_step2_us("nn")
        assert observed is not None
        assert observed["step2"] >= 0.0
        assert observed["gather"] >= 0.0
        assert observed["eval"] >= 0.0

    def test_feedback_applies_without_epoch_drift(self):
        # On a mutation-free session, observations must still reach
        # the plans: every `replan_every` observations the calibration
        # generation bumps and the next lookup re-scores.
        ds = make_dataset(300, seed=15)
        db = Database(ds, planner=Planner(replan_every=5))
        assert db.explain("nn").retriever == "brute"
        # Feed a decisive fake observation, then cross the replan
        # window with *distinct* queries of a different kind (their
        # observations land in other buckets, and distinct points
        # dodge the result cache) — no mutation anywhere.
        db.planner.observe("uv", "nn", 1e-6)
        rng = np.random.default_rng(0)
        for q in ds.domain.sample_points(6, rng):
            db.expected_nn(q)
        plan = db.explain("nn")
        assert plan.retriever == "uv"
        assert plan.estimates["uv"].source == "observed"

    def test_built_index_estimates_reach_plans_without_drift(self):
        # Building an index (lazily, via a forced query) bumps the
        # calibration generation so its real shape replaces the
        # static formula at the very next plan lookup.
        ds = make_dataset(60, seed=16)
        db = Database(ds)
        static_plan = db.explain("nn")
        assert static_plan.estimates["pv"].source == "static"
        db.nn(ds.domain.center, retriever="pv")  # builds the PV-index
        calibrated = db.explain("nn")
        assert calibrated is not static_plan
        # pv now reports from the built index (or the forced query's
        # own observation, which is even fresher information).
        assert calibrated.estimates["pv"].source in ("index", "observed")

    def test_policy_fixed_timings_use_their_own_bucket(self):
        # The exact k>1 Step-1 filter is structurally different from
        # the k=1 min-max pass: its observations must not calibrate
        # the cost-based "knn" template.
        ds = make_dataset(60, seed=18)
        db = Database(ds)
        r = db.knn(ds.domain.center, k=3)
        assert r.plan.cost_kind == "knn:exact"
        assert db.planner.observed_step1_us("brute", "knn:exact") is not None
        assert db.planner.observed_step1_us("brute", "knn") is None
        g = db.group_nn(
            np.stack([ds.domain.center, ds.domain.center + 5.0]), "sum"
        )
        assert g.plan.cost_kind == "group_nn:direct"
        assert db.planner.observed_step1_us("brute", "group_nn") is None


# ----------------------------------------------------------------------
# Plan caching and epoch drift
# ----------------------------------------------------------------------
class TestPlanCacheAndEpochs:
    def test_plan_cache_hit_returns_same_plan(self):
        db = Database(make_dataset(200, dims=2))
        first = db.explain("nn")
        misses = db.planner.cache_misses
        again = db.explain("nn")
        assert again is first
        assert db.planner.cache_misses == misses
        assert db.planner.cache_hits >= 1

    def test_distinct_templates_plan_separately(self):
        db = Database(make_dataset(200, dims=2))
        assert db.explain("knn", k=1) is not db.explain("knn", k=2)

    def test_replans_after_mutation(self):
        ds = make_dataset(60, seed=5)
        db = Database(ds)
        before = db.explain("nn")
        assert before.epoch == 0
        db.delete(ds.ids[0])
        after = db.explain("nn")
        assert after is not before
        assert after.epoch == 1

    def test_direct_dataset_mutation_also_replans(self):
        # Mutating the dataset behind the session's back still drifts
        # the epoch; the session must notice on its next entry point.
        ds = make_dataset(60, seed=6)
        db = Database(ds)
        db.explain("nn")
        ds.delete(ds.ids[0])
        assert db.explain("nn").epoch == 1

    def test_stale_built_index_is_dropped_and_rebuilt(self):
        ds = make_dataset(50, seed=8)
        db = Database(ds)
        db.nn(ds.domain.center, retriever="rtree")
        old = db.index("rtree")
        # Bypass the session: the R-tree has no maintenance, so it is
        # one epoch behind and must be dropped at the next sync.
        ds.delete(ds.ids[0])
        assert "rtree" not in db.built_indexes  # built_indexes syncs
        result = db.nn(ds.domain.center, retriever="rtree")
        assert result.plan.retriever == "rtree"
        assert db.index("rtree") is not old  # fresh build

    def test_maintained_pv_survives_session_mutations(self):
        ds = make_dataset(50, seed=9)
        db = Database(ds)
        db.nn(ds.domain.center, retriever="pv")
        pv = db.index("pv")
        db.delete(ds.ids[0])
        assert "pv" in db.built_indexes
        assert db.index("pv") is pv  # incrementally maintained, kept


# ----------------------------------------------------------------------
# explain() matches execution
# ----------------------------------------------------------------------
class TestExplainMatchesExecution:
    RETRIEVER_TYPES = {
        "pv": "PVIndex",
        "rtree": "RTreePNNQ",
        "uv": "UVIndex",
        "brute": "BruteForceRetriever",
    }

    @pytest.mark.parametrize("forced", [None, "pv", "rtree", "brute"])
    def test_engine_uses_the_planned_retriever(self, forced):
        ds = make_dataset(50, seed=10)
        db = Database(ds)
        explained = db.explain("nn", retriever=forced)
        result = db.nn(ds.domain.center, retriever=forced)
        assert result.plan is explained  # same cached plan object
        engine = db._engines[("nn", result.plan.retriever)]
        actual = type(engine.retriever).__name__
        assert actual == self.RETRIEVER_TYPES[result.plan.retriever]

    def test_forcing_an_ineligible_retriever_raises(self):
        db = Database(make_dataset(50, dims=3, seed=12))
        with pytest.raises(PlanningError):
            db.explain("nn", retriever="uv")  # UV is 2D-only

    def test_plans_are_frozen(self):
        db = Database(make_dataset(50, seed=13))
        plan = db.explain("nn")
        assert isinstance(plan, Plan)
        with pytest.raises(TypeError):
            plan.scores["brute"] = 0.0
        with pytest.raises(AttributeError):
            plan.retriever = "rtree"
        assert isinstance(plan.estimates["brute"], CostEstimate)
        # describe() renders every scored handle plus the reason.
        text = plan.describe()
        assert plan.retriever in text and "reason" in text
