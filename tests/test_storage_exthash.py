"""Tests for the extensible hash table (secondary index)."""

import pytest

from repro.storage import ExtensibleHashTable, Pager


def small_table(record_size=64, page_size=256):
    """A table whose buckets hold page_size // record_size records."""
    return ExtensibleHashTable(Pager(page_size=page_size), record_size)


class TestBasicOps:
    def test_put_get(self):
        t = small_table()
        t.put(1, "a")
        assert t.get(1) == "a"
        assert len(t) == 1
        assert 1 in t

    def test_get_missing_raises_but_charges_read(self):
        t = small_table()
        reads = t.pager.stats.reads
        with pytest.raises(KeyError):
            t.get(42)
        assert t.pager.stats.reads == reads + 1

    def test_overwrite(self):
        t = small_table()
        t.put(1, "a")
        t.put(1, "b")
        assert t.get(1) == "b"
        assert len(t) == 1

    def test_delete(self):
        t = small_table()
        t.put(1, "a")
        assert t.delete(1) == "a"
        assert len(t) == 0
        with pytest.raises(KeyError):
            t.delete(1)

    def test_rejects_bad_record_size(self):
        with pytest.raises(ValueError):
            ExtensibleHashTable(Pager(), record_size=0)

    def test_keys_iteration(self):
        t = small_table()
        for k in range(10):
            t.put(k, k * 10)
        assert sorted(t.keys()) == list(range(10))


class TestSplitting:
    def test_directory_grows_under_load(self):
        t = small_table(record_size=64, page_size=128)  # 2 per bucket
        for k in range(64):
            t.put(k, k)
        assert len(t) == 64
        assert t.global_depth >= 4
        assert t.directory_size == 2**t.global_depth
        for k in range(64):
            assert t.get(k) == k

    def test_local_depth_invariant(self):
        t = small_table(record_size=64, page_size=128)
        for k in range(128):
            t.put(k, -k)
        # Every key is in the bucket matching its hash prefix.
        for k in range(128):
            bucket = t._bucket(k)
            assert k in bucket.keys
            assert bucket.local_depth <= t.global_depth

    def test_bucket_count_le_directory(self):
        t = small_table(record_size=64, page_size=128)
        for k in range(100):
            t.put(k, k)
        assert t.n_buckets <= t.directory_size

    def test_capacity_respected(self):
        t = small_table(record_size=64, page_size=256)  # 4 per bucket
        for k in range(200):
            t.put(k, k)
        for b in {id(x): x for x in t._directory}.values():
            assert len(b.keys) <= 4

    def test_delete_under_splits(self):
        t = small_table(record_size=64, page_size=128)
        for k in range(50):
            t.put(k, str(k))
        for k in range(0, 50, 2):
            t.delete(k)
        assert len(t) == 25
        for k in range(1, 50, 2):
            assert t.get(k) == str(k)


class TestOversizedRecords:
    def test_multi_page_record_io(self):
        # Records of 10 KB on 4 KB pages: 3 pages per probe.
        pager = Pager(page_size=4096)
        t = ExtensibleHashTable(pager, record_size=10_000)
        t.put(1, "blob")
        reads = pager.stats.reads
        t.get(1)
        assert pager.stats.reads - reads == 3

    def test_disk_pages_accounting(self):
        pager = Pager(page_size=4096)
        t = ExtensibleHashTable(pager, record_size=10_000)
        t.put(1, "blob")
        assert t.disk_pages() >= 3
