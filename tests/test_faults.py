"""The deterministic fault-injection harness and its storage wiring.

Covers the harness itself (trigger windows, wid scoping, seeded
coins, pickling semantics, arm/disarm) and the WAL / durable-store
hook points: an injected append failure aborts the mutation and heals
the log to the last record boundary, a torn append never hides later
records, and the ``on_wal_error="read_only"`` policy degrades the
store instead of failing hard.  Also the checkpoint-vs-close race
regression (both now serialize on one lock inside DurableStore).
"""

from __future__ import annotations

import pickle
import threading

import numpy as np
import pytest

from repro.api import Database
from repro.storage import DurableStore, StoreReadOnly, WriteAheadLog
from repro.testing import (
    FaultInjected,
    FaultPlan,
    FaultRule,
    arm,
    check,
    disarm,
    injected,
)
from repro.testing.faults import active
from repro.uncertain import UncertainObject, synthetic_dataset, uniform_pdf


@pytest.fixture(autouse=True)
def _always_disarm():
    yield
    disarm()


def _make_obj(db: Database, oid: int, seed: int) -> UncertainObject:
    rng = np.random.default_rng(seed)
    region = db.dataset[db.dataset.ids[0]].region
    instances, weights = uniform_pdf(region, 4, rng)
    return UncertainObject(oid, region, instances, weights)


def _open_db(path, **kwargs) -> Database:
    ds = synthetic_dataset(n=24, dims=2, seed=13, n_samples=4)
    return Database.open(str(path), dataset=ds, indexes=(), **kwargs)


# ----------------------------------------------------------------------
# The harness itself
# ----------------------------------------------------------------------
def test_rule_validation_rejects_bad_values():
    with pytest.raises(ValueError, match="unknown fault action"):
        FaultRule("wal.append", "explode")
    with pytest.raises(ValueError, match="after must be"):
        FaultRule("wal.append", "eio", after=-1)
    with pytest.raises(ValueError, match="after must be"):
        FaultRule("wal.append", "eio", count=0)
    with pytest.raises(ValueError, match="probability"):
        FaultRule("wal.append", "eio", probability=0.0)


def test_unarmed_check_is_a_no_op():
    assert active() is None
    assert check("wal.append", epoch=1) is None


def test_arm_rejects_unregistered_sites():
    """A typo'd site used to arm successfully and then silently never
    fire — the chaos test "passed" while testing nothing."""
    from repro.testing import SITES

    plan = FaultPlan([FaultRule("wal.apend", "eio")])  # the typo
    with pytest.raises(ValueError, match="unregistered site"):
        arm(plan)
    assert active() is None  # nothing was armed
    assert "wal.append" in SITES and len(SITES) >= 6
    # Every registered site arms fine.
    arm(FaultPlan([FaultRule(site, "eio") for site in SITES]))
    disarm()


def test_trigger_window_fires_exactly_count_times_after_skip():
    plan = arm(FaultPlan([FaultRule("wal.append", "eio", after=2, count=2)]))
    outcomes = []
    for _ in range(6):
        try:
            check("wal.append")
            outcomes.append("ok")
        except FaultInjected:
            outcomes.append("eio")
    assert outcomes == ["ok", "ok", "eio", "eio", "ok", "ok"]
    assert [site for site, _, _ in plan.fired] == ["wal.append", "wal.append"]


def test_wid_scoping_only_counts_matching_hits():
    arm(FaultPlan([FaultRule("proc.chunk", "fail", wid=1)]))
    # Hits from other workers neither fire nor consume the window.
    for _ in range(3):
        assert check("proc.chunk", wid=0) is None
    with pytest.raises(FaultInjected):
        check("proc.chunk", wid=1)
    assert check("proc.chunk", wid=1) is None  # window consumed


def test_torn_rule_is_returned_to_the_caller():
    arm(FaultPlan([FaultRule("wal.append", "torn", arg=7)]))
    rule = check("wal.append", epoch=1)
    assert rule is not None and rule.action == "torn" and rule.arg == 7


def test_plan_pickles_schedule_but_not_runtime_state():
    plan = FaultPlan([FaultRule("wal.fsync", "eio")], seed=42)
    with injected(plan):
        with pytest.raises(FaultInjected):
            check("wal.fsync")
    clone = pickle.loads(pickle.dumps(plan))
    assert clone.seed == 42 and clone.rules == plan.rules
    assert clone.fired == []  # counters replay from zero per process
    with injected(clone):
        with pytest.raises(FaultInjected):
            check("wal.fsync")


def test_seeded_probability_replays_identically():
    def schedule(plan: FaultPlan) -> list[bool]:
        fired = []
        with injected(plan):
            for _ in range(32):
                try:
                    check("durable.checkpoint")
                    fired.append(False)
                except FaultInjected:
                    fired.append(True)
        return fired

    rule = FaultRule("durable.checkpoint", "eio", count=32, probability=0.5)
    a = schedule(FaultPlan([rule], seed=7))
    b = schedule(FaultPlan([rule], seed=7))
    assert a == b
    assert any(a) and not all(a)  # the coin actually flips both ways


def test_injected_context_manager_disarms_on_exit():
    with injected(FaultPlan([FaultRule("proc.attach", "eio")])) as plan:
        assert active() is plan
    assert active() is None


# ----------------------------------------------------------------------
# WAL hook points
# ----------------------------------------------------------------------
def test_injected_append_failure_aborts_mutation_and_heals(tmp_path):
    db = _open_db(tmp_path / "db")
    try:
        n0, epoch0 = len(db.dataset), db.epoch
        with injected(FaultPlan([FaultRule("wal.append", "eio")])):
            with pytest.raises(OSError):
                db.insert(_make_obj(db, 70_001, 1))
        # Log-before-apply: the aborted mutation never touched memory.
        assert len(db.dataset) == n0 and db.epoch == epoch0
        # The log healed: the next mutation logs and applies cleanly.
        db.insert(_make_obj(db, 70_002, 2))
        assert db.epoch == epoch0 + 1
    finally:
        db.close()
    db2 = Database.open(str(tmp_path / "db"), indexes=())
    try:
        assert len(db2.dataset) == n0 + 1
        assert 70_002 in db2.dataset.ids and 70_001 not in db2.dataset.ids
    finally:
        db2.close()


def test_torn_append_never_hides_later_records(tmp_path):
    db = _open_db(tmp_path / "db")
    wal_path = db._durable.wal_path
    try:
        with injected(FaultPlan([FaultRule("wal.append", "torn", arg=9)])):
            with pytest.raises(OSError):
                db.insert(_make_obj(db, 70_010, 3))
        # The tear was truncated back to the record boundary: the file
        # scans clean, so records appended after it are all visible.
        _, _, damaged = WriteAheadLog.scan(wal_path)
        assert not damaged
        db.insert(_make_obj(db, 70_011, 4))
        records, _, damaged = WriteAheadLog.scan(wal_path)
        assert not damaged and len(records) == 1
    finally:
        db.close()


def test_fsync_fault_heals_the_written_record(tmp_path):
    db = _open_db(tmp_path / "db")
    wal_path = db._durable.wal_path
    try:
        with injected(FaultPlan([FaultRule("wal.fsync", "eio")])):
            with pytest.raises(OSError):
                db.insert(_make_obj(db, 70_020, 5))
        # The record was fully written but could not be made durable:
        # it must not survive in the log ahead of later appends.
        records, _, damaged = WriteAheadLog.scan(wal_path)
        assert records == [] and not damaged
    finally:
        db.close()


# ----------------------------------------------------------------------
# Read-only degradation (on_wal_error="read_only")
# ----------------------------------------------------------------------
def test_read_only_policy_degrades_instead_of_failing(tmp_path):
    db = _open_db(tmp_path / "db", on_wal_error="read_only")
    try:
        db.insert(_make_obj(db, 70_030, 6))  # accepted before the fault
        n_accepted, epoch_accepted = len(db.dataset), db.epoch
        with injected(FaultPlan([FaultRule("wal.append", "eio")])):
            with pytest.raises(StoreReadOnly):
                db.insert(_make_obj(db, 70_031, 7))
        # Degradation latches even with the plan disarmed.
        with pytest.raises(StoreReadOnly):
            db.insert(_make_obj(db, 70_032, 8))
        assert len(db.dataset) == n_accepted and db.epoch == epoch_accepted
        # Reads keep working, and report the degradation on stats.
        result = db.nn(np.asarray([500.0, 500.0]))
        assert result.answer is not None
        assert result.stats.degraded_mode == 1
        info = db.describe()
        assert info["degraded_mode"] is True
        with pytest.raises(StoreReadOnly):
            db.checkpoint()
    finally:
        db.close()  # skips the checkpoint, seals the store
    db2 = Database.open(str(tmp_path / "db"), indexes=())
    try:
        # Everything accepted before the fault recovered; nothing after.
        assert db2.epoch == epoch_accepted
        assert 70_030 in db2.dataset.ids
        assert 70_031 not in db2.dataset.ids
    finally:
        db2.close()


def test_fail_stop_policy_keeps_retrying(tmp_path):
    db = _open_db(tmp_path / "db")  # default on_wal_error="fail_stop"
    try:
        with injected(FaultPlan([FaultRule("wal.append", "eio")])):
            with pytest.raises(OSError):
                db.insert(_make_obj(db, 70_040, 9))
        # No latch: the next attempt logs and applies.
        db.insert(_make_obj(db, 70_041, 10))
        assert db.describe()["degraded_mode"] is False
    finally:
        db.close()


# ----------------------------------------------------------------------
# Checkpoint vs close: the satellite-2 race regression
# ----------------------------------------------------------------------
def test_concurrent_checkpoints_and_close_serialize(tmp_path):
    """A checkpoint racing ``close()`` (as a pool fence's checkpoint
    races ``Database.close()``) must serialize on the store's lock —
    no double WAL reset, no WAL closed under a checkpoint's feet."""
    path = str(tmp_path / "db")
    ds = synthetic_dataset(n=24, dims=2, seed=13, n_samples=4)
    store = DurableStore(path)
    store.initialize(ds)
    store.attach(ds)
    rng = np.random.default_rng(17)
    region = ds[ds.ids[0]].region
    for i in range(5):
        instances, weights = uniform_pdf(region, 4, rng)
        ds.insert(UncertainObject(80_000 + i, region, instances, weights))
    final_epoch = ds.epoch

    errors: list[BaseException] = []
    started = threading.Barrier(2)

    def churn() -> None:
        try:
            started.wait()
            for _ in range(200):
                try:
                    store.checkpoint()
                except StoreReadOnly:
                    raise
                except RuntimeError:
                    return  # closed mid-loop: the guarded path
        except BaseException as error:  # noqa: BLE001 - reported below
            errors.append(error)

    thread = threading.Thread(target=churn)
    thread.start()
    started.wait()
    store.close()
    thread.join(timeout=30)
    assert not thread.is_alive()
    assert not errors, errors

    recovered = DurableStore(path).recover()
    assert recovered.epoch == final_epoch
    assert len(recovered) == len(ds)
