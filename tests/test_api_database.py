"""Database session API tests.

Covers the tentpole contract: every query class answers through one
front door with answers identical to the direct engine API, batches
group by template and return in input order, envelopes are frozen,
and mutations route through maintained indexes.
"""

import numpy as np
import pytest

from repro import (
    PNNQEngine,
    ReverseNNEngine,
    UncertainObject,
    synthetic_dataset,
    uniform_pdf,
)
from repro.api import Database, Q, QueryResult, QuerySpec
from repro.core import (
    ExpectedNNEngine,
    GroupNNEngine,
    KNNEngine,
    TopKEngine,
    VerifierEngine,
)
from repro.engine import ExecutionStats
from repro.geometry import Rect


@pytest.fixture(scope="module")
def dataset():
    return synthetic_dataset(
        n=50, dims=2, u_max=400, n_samples=12, seed=21
    )


@pytest.fixture()
def db(dataset):
    return Database(dataset)


@pytest.fixture(scope="module")
def queries(dataset):
    rng = np.random.default_rng(5)
    return dataset.domain.sample_points(6, rng)


def assert_prob_maps_equal(a, b):
    assert set(a) == set(b)
    for oid in a:
        assert a[oid] == pytest.approx(b[oid], abs=1e-12)


# ----------------------------------------------------------------------
# Answers match the direct engine API for every query class
# ----------------------------------------------------------------------
class TestAnswersMatchEngines:
    def test_nn(self, db, dataset, queries):
        engine = PNNQEngine(dataset)
        for q in queries:
            got = db.nn(q, retriever="brute")
            want = engine.query(q)
            assert got.answer.candidate_ids == want.candidate_ids
            assert_prob_maps_equal(got.probabilities, want.probabilities)
            assert got.best == want.best

    def test_knn(self, db, dataset, queries):
        engine = KNNEngine(dataset)
        for q in queries[:3]:
            got = db.knn(q, k=3)
            want = engine.query(q, k=3)
            assert_prob_maps_equal(got.probabilities, want.probabilities)

    def test_topk(self, db, dataset, queries):
        engine = TopKEngine(dataset)
        for q in queries[:3]:
            got = db.topk(q, k=3, retriever="brute")
            assert got.answer.ranking == engine.query(q, k=3).ranking

    def test_threshold(self, db, dataset, queries):
        engine = VerifierEngine(dataset)
        for q in queries[:3]:
            got = db.threshold(q, p=0.2, retriever="brute")
            assert got.answer == engine.query(q, tau=0.2)

    def test_group_nn(self, db, dataset):
        engine = GroupNNEngine(dataset)
        rng = np.random.default_rng(9)
        qs = dataset.domain.sample_points(3, rng)
        for aggregate in ("sum", "max", "min"):
            got = db.group_nn(qs, aggregate, retriever="brute")
            want = engine.query(qs, aggregate=aggregate)
            assert_prob_maps_equal(got.probabilities, want.probabilities)

    def test_reverse_nn(self, db, dataset):
        engine = ReverseNNEngine(dataset)
        obj = dataset[dataset.ids[0]]
        got = db.reverse_nn(obj)
        want = engine.query(obj)
        assert_prob_maps_equal(got.probabilities, want.probabilities)

    def test_expected_nn(self, db, dataset, queries):
        engine = ExpectedNNEngine(dataset)
        for q in queries[:3]:
            got = db.expected_nn(q, retriever="brute")
            assert got.answer.ranking == engine.query(q).ranking
            assert got.best == engine.query(q).best

    def test_indexed_answers_match_brute(self, db, dataset, queries):
        for q in queries:
            via_pv = db.nn(q, retriever="pv")
            via_rt = db.nn(q, retriever="rtree")
            via_bf = db.nn(q, retriever="brute")
            assert set(via_pv.answer.candidate_ids) == set(
                via_bf.answer.candidate_ids
            )
            assert_prob_maps_equal(
                via_pv.probabilities, via_bf.probabilities
            )
            assert_prob_maps_equal(
                via_rt.probabilities, via_bf.probabilities
            )


# ----------------------------------------------------------------------
# Envelope semantics
# ----------------------------------------------------------------------
class TestEnvelopes:
    def test_envelope_fields(self, db, dataset):
        r = db.nn(dataset.domain.center)
        assert isinstance(r, QueryResult)
        assert r.kind == "nn"
        assert isinstance(r.stats, ExecutionStats)
        assert r.stats.queries == 1
        assert r.plan.retriever in r.plan.scores
        assert r.stats.object_retrieval >= 0.0

    def test_envelope_is_frozen(self, db, dataset):
        r = db.nn(dataset.domain.center)
        with pytest.raises(AttributeError):
            r.answer = None
        with pytest.raises(TypeError):
            r.probabilities[999] = 1.0
        with pytest.raises(ValueError):
            r.answer.query[0] = 0.0

    def test_stats_are_per_query_deltas(self, db, dataset, queries):
        first = db.nn(queries[0])
        second = db.nn(queries[1])
        assert first.stats.queries == 1
        assert second.stats.queries == 1  # not cumulative

    def test_topk_probabilities_view(self, db, dataset):
        r = db.topk(dataset.domain.center, k=2)
        assert r.probabilities == dict(r.answer.ranking)
        assert r.best == r.answer.ids[0]

    def test_threshold_has_no_probabilities(self, db, dataset):
        r = db.threshold(dataset.domain.center, p=0.5)
        assert r.probabilities is None
        assert all(isinstance(v, bool) for v in r.answer.values())


# ----------------------------------------------------------------------
# Batch execution
# ----------------------------------------------------------------------
class TestBatch:
    def test_mixed_batch_returns_in_input_order(self, db, dataset, queries):
        specs = [
            Q.nn(queries[0]),
            Q.topk(queries[1], k=2),
            Q.nn(queries[2]),
            Q.threshold(queries[0], p=0.3),
            Q.knn(queries[1], k=2),
        ]
        results = db.batch(specs)
        assert [r.kind for r in results] == [
            "nn", "topk", "nn", "threshold", "knn",
        ]
        # Each result matches its single-query counterpart.
        assert_prob_maps_equal(
            results[0].probabilities, db.nn(queries[0]).probabilities
        )
        assert results[1].answer.ranking == db.topk(
            queries[1], k=2
        ).answer.ranking

    def test_batch_groups_by_template(self, db, queries):
        specs = [Q.nn(q) for q in queries] + [Q.nn(queries[0])]
        results = db.batch(specs)
        # One group: every envelope shares the same plan and delta.
        assert len({id(r.plan) for r in results}) == 1
        assert results[0].stats.queries == len(specs)
        assert results[0].stats.batches == 1
        assert results[-1].stats.dedup_hits >= 1

    def test_batch_rejects_unknown_kind(self, db, queries):
        with pytest.raises(KeyError):
            db.batch([QuerySpec("nearest", queries[0])])

    def test_batch_with_forced_retriever(self, db, queries):
        results = db.batch([Q.nn(q) for q in queries], retriever="pv")
        assert all(r.plan.retriever == "pv" for r in results)
        assert all(r.plan.forced for r in results)


# ----------------------------------------------------------------------
# Mutations through the session
# ----------------------------------------------------------------------
def _object_at(dataset, point, oid):
    region = Rect.from_center(point, half_widths=[2.0, 2.0])
    instances, weights = uniform_pdf(
        region, n_samples=16, rng=np.random.default_rng(int(oid))
    )
    return UncertainObject(
        oid=oid, region=region, instances=instances, weights=weights
    )


class TestMutations:
    def test_insert_changes_answers(self):
        ds = synthetic_dataset(n=40, dims=2, u_max=400, n_samples=8, seed=31)
        db = Database(ds)
        q = ds.domain.center
        before = db.nn(q)
        obj = _object_at(ds, q, oid=7_001)
        db.insert(obj)
        after = db.nn(q)
        assert after.best == 7_001
        assert before.best != 7_001
        assert len(db) == 41

    def test_delete_roundtrip(self):
        ds = synthetic_dataset(n=40, dims=2, u_max=400, n_samples=8, seed=32)
        db = Database(ds)
        obj = _object_at(ds, ds.domain.center, oid=7_002)
        db.insert(obj)
        removed = db.delete(7_002)
        assert removed.oid == 7_002
        assert len(db) == 40
        assert db.nn(ds.domain.center).best != 7_002

    def test_mutation_routes_through_built_pv_index(self):
        ds = synthetic_dataset(n=40, dims=2, u_max=400, n_samples=8, seed=33)
        db = Database(ds)
        q = ds.domain.center
        db.nn(q, retriever="pv")
        pv = db.index("pv")
        obj = _object_at(ds, q, oid=7_003)
        db.insert(obj)
        # Incremental maintenance: the same PVIndex instance absorbed
        # the insert and still answers (correctly) for the new object.
        assert db.index("pv") is pv
        assert pv.dataset_epoch == db.epoch
        assert db.nn(q, retriever="pv").best == 7_003

    def test_results_stay_correct_across_epochs_via_cache(self):
        ds = synthetic_dataset(n=40, dims=2, u_max=400, n_samples=8, seed=34)
        db = Database(ds)  # result_cache_size defaults on
        q = ds.domain.center
        db.nn(q)
        db.nn(q)  # cache hit
        obj = _object_at(ds, q, oid=7_004)
        db.insert(obj)
        assert db.nn(q).best == 7_004  # no stale cached answer


# ----------------------------------------------------------------------
# Misc surface
# ----------------------------------------------------------------------
class TestSurface:
    def test_from_objects(self, dataset):
        db = Database.from_objects(list(dataset), domain=dataset.domain)
        assert len(db) == len(dataset)
        assert db.dims == dataset.dims

    def test_unknown_kind_and_index_raise(self, db):
        with pytest.raises(KeyError):
            db.explain("nearest")
        with pytest.raises(KeyError):
            db.index("btree")

    def test_explain_accepts_specs(self, db, queries):
        spec = Q.knn(queries[0], k=2)
        assert db.explain(spec).retriever == db.explain("knn", k=2).retriever

    def test_repr(self, db):
        text = repr(db)
        assert "Database(" in text and "epoch=0" in text
