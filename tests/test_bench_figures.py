"""Tests for the figure drivers (repro.bench.figures) at tiny scale.

Each driver is exercised once with minimal sweeps — enough to validate
row structure, column contracts, and the qualitative relations the
benchmarks assert at larger scale.
"""

import pytest

from repro.bench import figures


class TestTable1:
    def test_rows_and_registry(self):
        result = figures.table1_defaults()
        assert len(result.rows) == 8
        assert result.figure == "Table I"
        assert "table1" in figures.ALL_FIGURES

    def test_each_parameter_listed_once(self):
        result = figures.table1_defaults()
        params = result.series("parameter")
        assert len(params) == len(set(params))


class TestQuerySweeps:
    def test_fig9a_structure(self):
        result = figures.fig9a_query_vs_size(
            sizes=[40, 80], n_queries=3
        )
        assert len(result.rows) == 4  # 2 sizes x 2 indexes
        assert set(result.series("index")) == {"R-tree", "PV-index"}
        for row in result.rows:
            assert row["tq_ms"] >= 0
            assert row["tq_ms"] == pytest.approx(
                row["t_or_ms"] + row["t_pc_ms"], rel=1e-6
            )

    def test_fig9b_fractions(self):
        result = figures.fig9b_or_pc_split(size=50, n_queries=3)
        for row in result.rows:
            assert 0.0 <= row["or_fraction"] <= 1.0

    def test_fig9c_io_nonnegative(self):
        result = figures.fig9c_query_io_vs_size(
            sizes=[40], n_queries=3
        )
        assert all(row["io_pages"] >= 0 for row in result.rows)

    def test_fig9e_uv_only_2d(self):
        result = figures.fig9e_query_vs_dims(
            dims=[2, 3], size=40, n_queries=3
        )
        uv_rows = [
            r for r in result.rows if r["index"] == "UV-index"
        ]
        assert uv_rows and all(r["dims"] == 2 for r in uv_rows)

    def test_fig9h_datasets(self):
        result = figures.fig9h_real_datasets(
            names=["airports"], size=40, n_queries=2
        )
        assert {r["dataset"] for r in result.rows} == {"airports"}
        # airports is 3D: no UV-index rows.
        assert all(r["index"] != "UV-index" for r in result.rows)


class TestConstructionSweeps:
    def test_fig10a_iterations_decrease_with_delta(self):
        result = figures.fig10a_construction_vs_delta(
            deltas=[1.0, 1000.0], size=40
        )
        iters = result.series("se_iterations")
        assert iters[0] >= iters[1]

    def test_fig10b_includes_all_three_strategies(self):
        result = figures.fig10b_cset_all_fs_is(sizes=[25])
        assert {r["strategy"] for r in result.rows} == {
            "ALL", "FS", "IS",
        }

    def test_fig10c_reports_cset_sizes(self):
        result = figures.fig10c_construction_vs_size(sizes=[40])
        for row in result.rows:
            assert row["mean_cset"] > 0

    def test_fig10e_split_components(self):
        result = figures.fig10e_se_time_split(size=40)
        for row in result.rows:
            assert row["choose_cset_s"] >= 0
            assert row["ubr_s"] > 0

    def test_fig10g_speedup_positive(self):
        result = figures.fig10g_uv_speedup(
            names=["roads"], size=60
        )
        assert result.rows[0]["speedup"] > 0


class TestUpdateSweeps:
    def test_fig10h_insertion_methods(self):
        result = figures.fig10h_insertion(
            sizes=[40], update_fraction=0.1
        )
        assert {r["method"] for r in result.rows} == {"Inc", "Rebuild"}
        assert {r["index"] for r in result.rows} == {
            "PV-index", "UV-index"
        }
        assert all(r["tu_seconds"] > 0 for r in result.rows)
        assert all(r["cells"] > 0 for r in result.rows)

    def test_fig10i_deletion_methods(self):
        result = figures.fig10i_deletion(
            sizes=[40], update_fraction=0.1
        )
        assert {r["method"] for r in result.rows} == {"Inc", "Rebuild"}
        assert {r["index"] for r in result.rows} == {
            "PV-index", "UV-index"
        }

    def test_update_sweep_3d_skips_uv(self):
        result = figures.fig10i_deletion(
            sizes=[30], update_fraction=0.1, dims=3
        )
        assert {r["index"] for r in result.rows} == {"PV-index"}

    def test_invalid_operation_rejected(self):
        with pytest.raises(ValueError, match="operation"):
            figures._update_sweep("f", "t", "upsert", [10], 0.1)


class TestAblations:
    def test_mmax_volumes_monotone(self):
        result = figures.ablation_mmax(m_maxes=[2, 20], size=30)
        vols = result.series("mean_ubr_volume")
        assert vols[1] <= vols[0] * 1.0000001

    def test_tightness_no_violations(self):
        result = figures.ablation_ubr_tightness(
            deltas=[10.0], size=25, n_probe=256
        )
        assert result.rows[0]["containment_violations"] == 0

    def test_verifier_fraction_in_unit_interval(self):
        result = figures.ablation_verifier(size=40, n_queries=3)
        assert 0.0 <= result.rows[0]["avoided_frac"] <= 1.0

    def test_cset_parameters_rows(self):
        result = figures.ablation_cset_parameters(
            ks=[20], kpartitions=[5], size=30, n_queries=2
        )
        assert {r["strategy"] for r in result.rows} == {"FS", "IS"}

    def test_batch_rows_and_dedup(self):
        result = figures.ablation_batch(size=40, n_queries=12, n_hot=3)
        assert {r["workload"] for r in result.rows} == {
            "uniform", "hotspot",
        }
        hotspot = next(
            r for r in result.rows if r["workload"] == "hotspot"
        )
        assert hotspot["distinct"] <= 3
        assert all(r["batch_ms"] > 0 for r in result.rows)


class TestRegistry:
    def test_all_figures_complete(self):
        expected = {
            "table1", "fig9a", "fig9b", "fig9c", "fig9d", "fig9e",
            "fig9f", "fig9g", "fig9h", "fig10a", "fig10b", "fig10c",
            "fig10d", "fig10e", "fig10f", "fig10g", "fig10h", "fig10i",
            "ablation_mmax", "ablation_cset", "ablation_tightness",
            "ablation_verifier", "ablation_bulkload", "ablation_topk",
            "ablation_knn", "ablation_batch",
        }
        assert set(figures.ALL_FIGURES) == expected

    def test_cli_lists_figures(self, capsys):
        with pytest.raises(SystemExit):
            figures.main(["not-a-figure"])

    def test_cli_runs_table1(self, capsys):
        assert figures.main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
