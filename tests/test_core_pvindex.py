"""Integration tests for the PV-index: construction, queries, updates."""

import numpy as np
import pytest

from repro import (
    AllCSet,
    FixedSelection,
    IncrementalSelection,
    PVIndex,
    Rect,
    UncertainObject,
    synthetic_dataset,
)
from repro.core import possible_nn_ids
from repro.storage import OctreeConfig, Pager
from repro.uncertain import uniform_pdf


def make_obj(oid, center, half=20.0, seed=0, dims=2):
    region = Rect.from_center(center, half)
    inst, w = uniform_pdf(region, 3, np.random.default_rng(seed))
    return UncertainObject(oid, region, inst, w)


def check_queries(index, ds, n=25, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(n):
        q = ds.domain.sample_points(1, rng)[0]
        assert set(index.candidates(q)) == possible_nn_ids(ds, q)


class TestConstruction:
    @pytest.mark.parametrize(
        "strategy",
        [AllCSet(), FixedSelection(k=30), IncrementalSelection()],
        ids=["ALL", "FS", "IS"],
    )
    def test_query_correctness_2d(self, strategy):
        ds = synthetic_dataset(n=80, dims=2, u_max=300, n_samples=3, seed=1)
        index = PVIndex.build(ds, strategy=strategy)
        check_queries(index, ds, n=25, seed=2)

    def test_query_correctness_3d(self):
        ds = synthetic_dataset(n=60, dims=3, u_max=400, n_samples=3, seed=3)
        index = PVIndex.build(ds)
        check_queries(index, ds, n=15, seed=4)

    def test_secondary_index_complete(self):
        ds = synthetic_dataset(n=50, dims=2, n_samples=3, seed=5)
        index = PVIndex.build(ds)
        assert len(index) == 50
        for oid in ds.ids:
            assert index.ubr_of(oid).contains_rect(ds[oid].region)

    def test_build_stats(self):
        ds = synthetic_dataset(n=30, dims=2, n_samples=3, seed=6)
        index = PVIndex.build(ds)
        assert index.stats.build_seconds > 0
        assert index.stats.se_seconds > 0
        assert index.se.stats.runs == 30

    def test_query_io_charged(self):
        ds = synthetic_dataset(n=60, dims=2, n_samples=3, seed=7)
        pager = Pager()
        index = PVIndex.build(ds, pager=pager)
        before = pager.stats.reads
        index.candidates(ds.domain.center)
        assert pager.stats.reads > before

    def test_memory_budget_respected(self):
        ds = synthetic_dataset(n=80, dims=2, n_samples=3, seed=8)
        config = OctreeConfig(memory_budget=4096)
        index = PVIndex.build(ds, octree_config=config)
        assert index.primary.memory_used <= 4096
        check_queries(index, ds, n=10, seed=9)


class TestDeletion:
    def test_delete_then_query_correct(self):
        ds = synthetic_dataset(n=70, dims=2, u_max=300, n_samples=3, seed=10)
        index = PVIndex.build(ds, strategy=AllCSet())
        victims = ds.ids[:8]
        for v in victims:
            index.delete(v)
            assert v not in ds
        assert len(index) == 62
        check_queries(index, ds, n=25, seed=11)

    def test_delete_removes_secondary_entry(self):
        ds = synthetic_dataset(n=30, dims=2, n_samples=3, seed=12)
        index = PVIndex.build(ds)
        victim = ds.ids[0]
        index.delete(victim)
        with pytest.raises(KeyError):
            index.ubr_of(victim)

    def test_delete_missing_raises(self):
        ds = synthetic_dataset(n=10, dims=2, n_samples=3, seed=13)
        index = PVIndex.build(ds)
        with pytest.raises(KeyError):
            index.delete(424242)

    def test_update_stats_track_affected(self):
        ds = synthetic_dataset(n=60, dims=2, n_samples=3, seed=14)
        index = PVIndex.build(ds)
        index.delete(ds.ids[0])
        assert index.stats.update_examined >= index.stats.update_affected


class TestInsertion:
    def test_insert_then_query_correct(self):
        ds = synthetic_dataset(n=60, dims=2, u_max=300, n_samples=3, seed=15)
        index = PVIndex.build(ds, strategy=AllCSet())
        rng = np.random.default_rng(16)
        for i in range(6):
            center = rng.uniform(500, 9500, 2)
            index.insert(make_obj(10_000 + i, center, half=30, seed=i))
        assert len(index) == 66
        check_queries(index, ds, n=25, seed=17)

    def test_insert_duplicate_raises(self):
        ds = synthetic_dataset(n=20, dims=2, n_samples=3, seed=18)
        index = PVIndex.build(ds)
        with pytest.raises(ValueError):
            index.insert(make_obj(ds.ids[0], [5000, 5000]))

    def test_maintenance_refuses_bypassed_index(self):
        # A direct dataset mutation bypasses the index; later
        # index-mediated maintenance must refuse to adopt the live
        # epoch rather than launder the bypassed mutation.
        ds = synthetic_dataset(n=20, dims=2, n_samples=3, seed=18)
        index = PVIndex.build(ds)
        ds.insert(make_obj(7000, [5000, 5000]))
        with pytest.raises(ValueError, match="stale"):
            index.insert(make_obj(7001, [4000, 4000]))
        with pytest.raises(ValueError, match="stale"):
            index.delete(ds.ids[0])

    def test_insert_near_existing_objects(self):
        # The inserted object lands in a dense area: many affected
        # objects whose UBRs must shrink.
        ds = synthetic_dataset(n=50, dims=2, u_max=200, n_samples=3, seed=19)
        index = PVIndex.build(ds, strategy=AllCSet())
        target = ds[ds.ids[0]]
        near = target.mean + 150.0
        index.insert(make_obj(5555, near.tolist(), half=10))
        check_queries(index, ds, n=25, seed=20)

    def test_mixed_workload(self):
        ds = synthetic_dataset(n=50, dims=2, u_max=250, n_samples=3, seed=21)
        index = PVIndex.build(ds)
        rng = np.random.default_rng(22)
        next_id = 10_000
        for step in range(10):
            if step % 2 == 0:
                center = rng.uniform(1000, 9000, 2)
                index.insert(make_obj(next_id, center, half=25))
                next_id += 1
            else:
                index.delete(int(rng.choice(ds.ids)))
        check_queries(index, ds, n=20, seed=23)


class TestIncrementalMatchesRebuild:
    def test_same_answers_after_deletion(self):
        ds = synthetic_dataset(n=60, dims=2, u_max=300, n_samples=3, seed=24)
        index = PVIndex.build(ds, strategy=AllCSet())
        for v in ds.ids[:5]:
            index.delete(v)
        rebuilt = PVIndex.build(ds.copy(), strategy=AllCSet())
        rng = np.random.default_rng(25)
        for _ in range(25):
            q = ds.domain.sample_points(1, rng)[0]
            assert set(index.candidates(q)) == set(rebuilt.candidates(q))

    def test_same_answers_after_insertion(self):
        ds = synthetic_dataset(n=50, dims=2, u_max=300, n_samples=3, seed=26)
        index = PVIndex.build(ds, strategy=AllCSet())
        rng = np.random.default_rng(27)
        for i in range(5):
            center = rng.uniform(500, 9500, 2)
            index.insert(make_obj(7000 + i, center, half=40, seed=i))
        rebuilt = PVIndex.build(ds.copy(), strategy=AllCSet())
        for _ in range(25):
            q = ds.domain.sample_points(1, rng)[0]
            assert set(index.candidates(q)) == set(rebuilt.candidates(q))
