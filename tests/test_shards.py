"""Sharded scatter-gather Step 1: layout invariants and bit-identity.

The contract under test: :class:`~repro.service.shards.ShardedRetriever`
answers exactly like :class:`~repro.engine.BruteForceRetriever` —
same candidate sets, same packed-insertion ordering, same floats —
while pruning MBR-dominated shards entirely (the counters prove work
was actually skipped, not just matched).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.retrievers import BruteForceRetriever
from repro.engine.stats import ExecutionStats
from repro.service.shards import ShardLayout, ShardedRetriever
from repro.uncertain import clustered_dataset, synthetic_dataset


def _datasets():
    return [
        ("uniform-2d", synthetic_dataset(n=300, dims=2, seed=1, n_samples=5)),
        ("uniform-3d", synthetic_dataset(n=257, dims=3, seed=2, n_samples=4)),
        ("clustered-2d", clustered_dataset(n=400, dims=2, seed=3, n_samples=5)),
    ]


# ----------------------------------------------------------------------
# Layout invariants
# ----------------------------------------------------------------------
def test_layout_is_a_disjoint_cover():
    for name, ds in _datasets():
        layout = ShardLayout.build(ds, 8)
        positions = np.concatenate([s.positions for s in layout.shards])
        assert len(positions) == len(ds), name
        assert len(set(positions.tolist())) == len(ds), name
        ids, los, his = ds.packed_regions()
        for shard in layout.shards:
            assert np.array_equal(shard.ids, ids[shard.positions])
            assert np.array_equal(shard.los, los[shard.positions])
            # The member MBR bounds every member region.
            assert (shard.mbr_lo <= shard.los).all()
            assert (shard.mbr_hi >= shard.his).all()


def test_octree_method_used_on_separable_data():
    ds = synthetic_dataset(n=300, dims=2, seed=1, n_samples=5)
    layout = ShardLayout.build(ds, 8)
    assert layout.method == "octree"
    assert len(layout) > 1


def test_hash_fallback_on_tiny_dataset():
    tiny = synthetic_dataset(n=6, dims=2, seed=4, n_samples=3)
    layout = ShardLayout.build(tiny, 8)
    assert layout.method == "hash"
    positions = np.concatenate([s.positions for s in layout.shards])
    assert len(set(positions.tolist())) == len(tiny)


def test_forced_octree_raises_on_degenerate_data():
    tiny = synthetic_dataset(n=6, dims=2, seed=4, n_samples=3)
    with pytest.raises(ValueError, match="degenerated"):
        ShardLayout.build(tiny, 8, method="octree")


def test_single_shard_layout_is_valid():
    ds = synthetic_dataset(n=50, dims=2, seed=9, n_samples=3)
    layout = ShardLayout.build(ds, 1)
    assert len(layout) == 1
    assert len(layout.shards[0]) == len(ds)


# ----------------------------------------------------------------------
# Bit-identity against brute force
# ----------------------------------------------------------------------
def test_candidates_bit_identical_to_brute_force():
    rng = np.random.default_rng(11)
    for name, ds in _datasets():
        brute = BruteForceRetriever(ds)
        sharded = ShardedRetriever(ds)
        queries = rng.uniform(
            ds.domain.lo, ds.domain.hi, size=(64, ds.dims)
        )
        want = brute.candidates_batch(queries)
        got = sharded.candidates_batch(queries)
        # Same ids, same order, every query — not set-equality.
        assert got == want, name
        assert sharded.candidates(queries[0]) == brute.candidates(
            queries[0]
        )


def test_bit_identical_under_hash_layout():
    ds = synthetic_dataset(n=40, dims=2, seed=5, n_samples=4)
    rng = np.random.default_rng(12)
    queries = rng.uniform(ds.domain.lo, ds.domain.hi, size=(16, 2))
    brute = BruteForceRetriever(ds)
    sharded = ShardedRetriever(
        ds, layout=ShardLayout.build(ds, 4, method="hash")
    )
    assert sharded.candidates_batch(queries) == brute.candidates_batch(
        queries
    )


def test_queries_at_domain_corners_and_centers():
    ds = clustered_dataset(n=200, dims=2, seed=6, n_samples=4)
    brute = BruteForceRetriever(ds)
    sharded = ShardedRetriever(ds)
    lo, hi = ds.domain.lo, ds.domain.hi
    queries = np.stack(
        [lo, hi, (lo + hi) / 2.0, np.array([lo[0], hi[1]])]
    )
    assert sharded.candidates_batch(queries) == brute.candidates_batch(
        queries
    )


# ----------------------------------------------------------------------
# Pruning actually happens, and is observable
# ----------------------------------------------------------------------
def test_prune_counters_accumulate_on_attached_stats():
    ds = clustered_dataset(n=400, dims=2, seed=3, n_samples=5)
    stats = ExecutionStats()
    sharded = ShardedRetriever(ds, stats=stats)
    rng = np.random.default_rng(13)
    queries = rng.uniform(ds.domain.lo, ds.domain.hi, size=(32, 2))
    sharded.candidates_batch(queries)
    n_shards = len(sharded.layout)
    assert stats.shards_dispatched + stats.shards_pruned == 32 * n_shards
    assert stats.shards_pruned > 0, "no shard was ever dominated"
    assert stats.shards_dispatched >= 32, (
        "each query must dispatch at least one shard"
    )


def test_layout_rebuilds_on_epoch_drift():
    ds = synthetic_dataset(n=100, dims=2, seed=7, n_samples=4)
    sharded = ShardedRetriever(ds)
    first = sharded.layout
    assert first.epoch == ds.epoch
    ds.delete(ds.ids[-1])
    second = sharded.layout
    assert second.epoch == ds.epoch
    assert second is not first
    rng = np.random.default_rng(14)
    queries = rng.uniform(ds.domain.lo, ds.domain.hi, size=(8, 2))
    assert sharded.candidates_batch(queries) == BruteForceRetriever(
        ds
    ).candidates_batch(queries)
