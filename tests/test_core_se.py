"""Tests for the Shrink-and-Expand algorithm.

The central invariant (conservativeness) is checked against the exact
Lemma 4 membership predicate: every sampled point of the PV-cell must
lie inside the UBR returned by SE, for every C-set strategy and every
warm start.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AllCSet,
    FixedSelection,
    IncrementalSelection,
    Rect,
    SEConfig,
    ShrinkExpand,
    UncertainDataset,
    UncertainObject,
    synthetic_dataset,
)
from repro.core import monte_carlo_mbr, pv_cell_contains_many
from repro.uncertain import uniform_pdf


def make_obj(oid, center, half=2.0, seed=0):
    region = Rect.from_center(center, half)
    inst, w = uniform_pdf(region, 2, np.random.default_rng(seed))
    return UncertainObject(oid, region, inst, w)


def assert_conservative(ds, oid, ubr, n=4000, seed=0):
    """Every sampled PV-cell point must be inside the UBR."""
    rng = np.random.default_rng(seed)
    pts = ds.domain.sample_points(n, rng)
    inside_cell = pv_cell_contains_many(ds, oid, pts)
    in_ubr = np.array([ubr.contains_point(p) for p in pts[inside_cell]])
    assert in_ubr.all() if len(in_ubr) else True


class TestSEConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SEConfig(delta=-1)
        with pytest.raises(ValueError):
            SEConfig(m_max=0)


class TestSEBasics:
    def test_two_point_objects_halfplane(self):
        # Certain points at x=20 and x=80: V(o0) is the half-plane
        # x <= 50, so B(o0) must converge to ~[0,50] x [0,100].
        a = UncertainObject(
            0, Rect([20, 50], [20, 50]), np.array([[20.0, 50.0]])
        )
        b = UncertainObject(
            1, Rect([80, 50], [80, 50]), np.array([[80.0, 50.0]])
        )
        ds = UncertainDataset([a, b], domain=Rect.cube(0, 100, 2))
        se = ShrinkExpand(AllCSet(), SEConfig(delta=0.1, m_max=10))
        result = se.compute_ubr(a, ds)
        assert result.ubr.lo[0] == pytest.approx(0.0, abs=0.2)
        assert result.ubr.hi[0] == pytest.approx(50.0, abs=0.5)
        assert result.ubr.lo[1] == pytest.approx(0.0, abs=0.2)
        assert result.ubr.hi[1] == pytest.approx(100.0, abs=0.2)

    def test_ubr_contains_uncertainty_region(self):
        ds = synthetic_dataset(n=40, dims=2, u_max=300, n_samples=2, seed=1)
        se = ShrinkExpand(IncrementalSelection(), SEConfig())
        for oid in ds.ids[:10]:
            result = se.compute_ubr(ds[oid], ds)
            assert result.ubr.contains_rect(ds[oid].region)

    def test_ubr_within_domain(self):
        ds = synthetic_dataset(n=40, dims=2, u_max=300, n_samples=2, seed=2)
        se = ShrinkExpand(IncrementalSelection(), SEConfig())
        for oid in ds.ids[:10]:
            result = se.compute_ubr(ds[oid], ds)
            assert ds.domain.contains_rect(result.ubr)

    def test_lower_bound_inside_ubr(self):
        ds = synthetic_dataset(n=40, dims=2, u_max=300, n_samples=2, seed=3)
        se = ShrinkExpand(FixedSelection(k=20), SEConfig())
        for oid in ds.ids[:10]:
            result = se.compute_ubr(ds[oid], ds)
            assert result.ubr.contains_rect(result.lower)

    def test_gap_below_delta(self):
        ds = synthetic_dataset(n=60, dims=2, u_max=200, n_samples=2, seed=4)
        delta = 5.0
        se = ShrinkExpand(AllCSet(), SEConfig(delta=delta))
        for oid in ds.ids[:5]:
            r = se.compute_ubr(ds[oid], ds)
            gap = np.maximum(
                r.lower.lo - r.ubr.lo, r.ubr.hi - r.lower.hi
            )
            assert np.max(gap) < delta

    def test_stats_accumulate(self):
        ds = synthetic_dataset(n=30, dims=2, n_samples=2, seed=5)
        se = ShrinkExpand(IncrementalSelection(), SEConfig())
        se.compute_ubr(ds[ds.ids[0]], ds)
        assert se.stats.runs == 1
        assert se.stats.iterations > 0
        assert se.stats.ubr_seconds > 0
        se.stats.reset()
        assert se.stats.runs == 0
        assert se.stats.mean_cset_size == 0.0


class TestConservativeness:
    @pytest.mark.parametrize(
        "strategy",
        [
            AllCSet(),
            FixedSelection(k=15),
            IncrementalSelection(kpartition=4, kglobal=60),
        ],
        ids=["ALL", "FS", "IS"],
    )
    def test_ubr_contains_cell_2d(self, strategy):
        ds = synthetic_dataset(n=50, dims=2, u_max=400, n_samples=2, seed=6)
        se = ShrinkExpand(strategy, SEConfig(delta=1.0))
        for oid in ds.ids[:8]:
            result = se.compute_ubr(ds[oid], ds)
            assert_conservative(ds, oid, result.ubr, seed=oid)

    def test_ubr_contains_cell_3d(self):
        ds = synthetic_dataset(n=40, dims=3, u_max=800, n_samples=2, seed=7)
        se = ShrinkExpand(IncrementalSelection(), SEConfig(delta=2.0))
        for oid in ds.ids[:5]:
            result = se.compute_ubr(ds[oid], ds)
            assert_conservative(ds, oid, result.ubr, n=3000, seed=oid)

    def test_ubr_contains_monte_carlo_mbr(self):
        ds = synthetic_dataset(n=40, dims=2, u_max=400, n_samples=2, seed=8)
        se = ShrinkExpand(AllCSet(), SEConfig(delta=0.5))
        for oid in ds.ids[:5]:
            result = se.compute_ubr(ds[oid], ds)
            mc = monte_carlo_mbr(ds, oid, n_samples=5000)
            # The MC MBR is an inner approximation of M(o) ⊆ B(o).
            assert result.ubr.expanded(1e-6).contains_rect(mc)

    @given(st.integers(0, 300))
    @settings(max_examples=8, deadline=None)
    def test_conservative_property(self, seed):
        ds = synthetic_dataset(
            n=30, dims=2, u_max=500, n_samples=2, seed=seed
        )
        se = ShrinkExpand(
            IncrementalSelection(kpartition=3, kglobal=25),
            SEConfig(delta=2.0),
        )
        oid = ds.ids[seed % len(ds)]
        result = se.compute_ubr(ds[oid], ds)
        assert_conservative(ds, oid, result.ubr, n=2500, seed=seed)


class TestTightness:
    def test_small_delta_tighter_than_large(self):
        ds = synthetic_dataset(n=80, dims=2, u_max=200, n_samples=2, seed=9)
        tight = ShrinkExpand(AllCSet(), SEConfig(delta=0.5))
        loose = ShrinkExpand(AllCSet(), SEConfig(delta=200.0))
        vol_tight = 0.0
        vol_loose = 0.0
        for oid in ds.ids[:10]:
            vol_tight += tight.compute_ubr(ds[oid], ds).ubr.volume
            vol_loose += loose.compute_ubr(ds[oid], ds).ubr.volume
        assert vol_tight <= vol_loose

    def test_bad_cset_gives_loose_ubr(self):
        # Section V-A's example: a C-set of one overlapping object
        # cannot shrink h(o) at all -> UBR stays the domain.
        o = make_obj(0, [50, 50], half=5)
        o1 = make_obj(1, [52, 52], half=5)  # overlaps o
        o2 = make_obj(2, [80, 50], half=2)
        ds = UncertainDataset([o, o1, o2], domain=Rect.cube(0, 100, 2))

        class OnlyOverlapping(AllCSet):
            def choose(self, obj, dataset):
                from repro.core.cset import CSet

                return CSet.from_objects([dataset[1]])

        se = ShrinkExpand(OnlyOverlapping(), SEConfig(delta=1.0))
        result = se.compute_ubr(o, ds)
        assert result.ubr == ds.domain


class TestIncrementalVariants:
    def _dataset(self, seed=10):
        return synthetic_dataset(
            n=60, dims=2, u_max=300, n_samples=2, seed=seed
        )

    def test_deletion_warm_start_conservative(self):
        ds = self._dataset()
        se = ShrinkExpand(AllCSet(), SEConfig(delta=1.0))
        victim = ds.ids[-1]
        old_ubrs = {
            oid: se.compute_ubr(ds[oid], ds).ubr for oid in ds.ids[:6]
        }
        ds.delete(victim)
        for oid in ds.ids[:6]:
            result = se.recompute_after_deletion(
                ds[oid], ds, old_ubr=old_ubrs[oid]
            )
            assert_conservative(ds, oid, result.ubr, seed=oid)
            # Lemma 9: the cell cannot shrink, so the new UBR must still
            # contain the old lower bound.
            assert result.ubr.expanded(1e-9).contains_rect(old_ubrs[oid])

    def test_insertion_warm_start_conservative(self):
        ds = self._dataset(seed=11)
        se = ShrinkExpand(AllCSet(), SEConfig(delta=1.0))
        old_ubrs = {
            oid: se.compute_ubr(ds[oid], ds).ubr for oid in ds.ids[:6]
        }
        new_obj = make_obj(9999, [5000, 5000], half=30)
        ds.insert(new_obj)
        for oid in ds.ids[:6]:
            result = se.recompute_after_insertion(
                ds[oid], ds, old_ubr=old_ubrs[oid]
            )
            assert_conservative(ds, oid, result.ubr, seed=oid)
            # Lemma 9: the cell cannot grow.
            assert old_ubrs[oid].expanded(1e-9).contains_rect(result.ubr)

    def test_refine_reconciles_stale_lower(self):
        ds = self._dataset(seed=12)
        se = ShrinkExpand(AllCSet(), SEConfig(delta=1.0))
        obj = ds[ds.ids[0]]
        cset = AllCSet().choose(obj, ds)
        # Lower bound sticking out of the upper bound must not crash.
        weird_lower = Rect(
            obj.region.lo - 1000.0, obj.region.hi + 1000.0
        )
        upper = ds.domain
        result = se.refine(obj, cset, ds.domain, weird_lower, upper)
        assert ds.domain.contains_rect(result.ubr)
