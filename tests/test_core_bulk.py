"""Tests for bulkloading and compression (repro.core.bulk)."""

import numpy as np
import pytest

from repro import PVIndex, synthetic_dataset
from repro.core import bulk_build, compact, z_order
from repro.core.bulk import _morton_key
from repro.storage import Pager


@pytest.fixture(scope="module")
def dataset():
    return synthetic_dataset(
        n=70, dims=2, u_max=300.0, n_samples=30, seed=4
    )


class TestMortonOrder:
    def test_morton_key_interleaves_bits(self):
        # 2D: x=0b01, y=0b10 -> interleaved (y1 x1 y0 x0) = 0b1001.
        assert _morton_key(np.array([1, 2]), bits=2) == 0b1001

    def test_morton_key_monotone_on_diagonal(self):
        keys = [
            _morton_key(np.array([v, v]), bits=8) for v in (0, 1, 7, 255)
        ]
        assert keys == sorted(keys)

    def test_z_order_is_permutation(self, dataset):
        order = z_order(dataset)
        assert sorted(order) == sorted(dataset.ids)

    def test_z_order_groups_nearby_objects(self, dataset):
        """Z-order keeps objects of the same quadrant contiguous-ish:
        consecutive pairs are closer on average than random pairs."""
        order = z_order(dataset)
        centers = {o.oid: o.region.center for o in dataset}
        consecutive = np.mean(
            [
                np.linalg.norm(centers[a] - centers[b])
                for a, b in zip(order, order[1:])
            ]
        )
        rng = np.random.default_rng(0)
        shuffled = list(order)
        rng.shuffle(shuffled)
        random_pairs = np.mean(
            [
                np.linalg.norm(centers[a] - centers[b])
                for a, b in zip(shuffled, shuffled[1:])
            ]
        )
        assert consecutive < random_pairs


class TestBulkBuild:
    def test_same_answers_as_sequential(self, dataset):
        sequential = PVIndex.build(dataset.copy())
        report = bulk_build(dataset.copy())
        rng = np.random.default_rng(1)
        for q in rng.uniform(0, 10_000, size=(25, 2)):
            assert set(report.index.candidates(q)) == set(
                sequential.candidates(q)
            ), f"bulk/sequential mismatch at {q}"

    def test_same_ubrs_as_sequential(self, dataset):
        sequential = PVIndex.build(dataset.copy())
        report = bulk_build(dataset.copy())
        for oid in dataset.ids:
            a, b = report.index.ubr_of(oid), sequential.ubr_of(oid)
            assert np.allclose(a.lo, b.lo) and np.allclose(a.hi, b.hi)

    def test_report_accounting(self, dataset):
        report = bulk_build(dataset.copy())
        assert report.build_seconds > 0
        assert report.write_pages > 0
        assert len(report.index) == len(dataset)

    def test_custom_pager_is_used(self, dataset):
        pager = Pager(page_size=4096)
        report = bulk_build(dataset.copy(), pager=pager)
        assert report.index.pager is pager
        assert pager.stats.writes > 0


class TestCompaction:
    def test_compact_preserves_answers(self, dataset):
        index = PVIndex.build(dataset.copy())
        rng = np.random.default_rng(2)
        queries = rng.uniform(0, 10_000, size=(20, 2))
        before = [set(index.candidates(q)) for q in queries]
        compact(index)
        after = [set(index.candidates(q)) for q in queries]
        assert before == after

    def test_compact_reclaims_after_deletions(self, dataset):
        index = PVIndex.build(dataset.copy())
        # Deleting objects leaves sparse page chains behind.
        for oid in list(index.dataset.ids)[:30]:
            index.delete(oid)
        report = compact(index)
        assert report.pages_after <= report.pages_before
        assert report.pages_reclaimed >= 0
        # Queries still correct for the surviving objects.
        from repro.core.pvcell import possible_nn_ids

        rng = np.random.default_rng(3)
        for q in rng.uniform(0, 10_000, size=(10, 2)):
            assert set(index.candidates(q)) == possible_nn_ids(
                index.dataset, q
            )

    def test_compact_idempotent(self, dataset):
        index = PVIndex.build(dataset.copy())
        compact(index)
        second = compact(index)
        assert second.pages_reclaimed == 0
