"""WAL torture and snapshot+WAL recovery tests."""

import os

import numpy as np
import pytest

from repro.geometry import Rect
from repro.storage import DurableStore, RecoveryError, WalError, WriteAheadLog
from repro.storage.wal import (
    OP_DELETE,
    OP_INSERT,
    encode_delete,
    encode_insert,
)
from repro.uncertain import (
    UncertainDataset,
    UncertainObject,
    synthetic_dataset,
    uniform_pdf,
)


def small_dataset(n=10, seed=3):
    return synthetic_dataset(n=n, dims=2, seed=seed, n_samples=4)


def make_object(oid, seed):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(500.0, 9_000.0, size=2)
    region = Rect(lo, lo + rng.uniform(10.0, 80.0, size=2))
    instances, weights = uniform_pdf(region, 4, rng)
    return UncertainObject(
        oid=oid, region=region, instances=instances, weights=weights
    )


class TestWalFormat:
    def test_append_scan_roundtrip(self, tmp_path):
        path = tmp_path / "wal.log"
        obj = make_object(42, seed=1)
        with WriteAheadLog(path) as wal:
            wal.append(1, OP_INSERT, encode_insert(obj))
            wal.append(2, OP_DELETE, encode_delete(42))
        records, _valid, damaged = WriteAheadLog.scan(path)
        assert not damaged
        assert [r.epoch for r in records] == [1, 2]
        op, back = records[0].decode()
        assert op == "insert" and back.oid == 42
        assert np.array_equal(back.instances, obj.instances)
        assert np.array_equal(back.weights, obj.weights)
        assert np.array_equal(back.region.lo, obj.region.lo)
        assert records[1].decode() == ("delete", 42)

    def test_missing_file_scans_empty(self, tmp_path):
        records, _valid, damaged = WriteAheadLog.scan(tmp_path / "nope")
        assert records == [] and not damaged

    def test_truncated_tail_is_dropped(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append(1, OP_DELETE, encode_delete(1))
            wal.append(2, OP_DELETE, encode_delete(2))
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - 3)  # tear the last record's payload
        records, valid, damaged = WriteAheadLog.scan(path)
        assert damaged
        assert [r.epoch for r in records] == [1]
        # valid_bytes points at the start of the torn record.
        assert valid < size - 3

    def test_corrupt_checksum_stops_scan(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append(1, OP_DELETE, encode_delete(1))
            wal.append(2, OP_DELETE, encode_delete(2))
        # Flip one payload byte of the first record (after the 12-byte
        # file header and 17-byte record header).
        with open(path, "r+b") as fh:
            fh.seek(12 + 17)
            byte = fh.read(1)
            fh.seek(12 + 17)
            fh.write(bytes([byte[0] ^ 0xFF]))
        records, _valid, damaged = WriteAheadLog.scan(path)
        assert damaged and records == []

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"NOTAWALF" + b"\x00" * 64)
        with pytest.raises(WalError, match="magic"):
            WriteAheadLog.scan(path)

    def test_append_after_truncate_heals_tail(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append(1, OP_DELETE, encode_delete(1))
            wal.append(2, OP_DELETE, encode_delete(2))
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) - 1)
        _records, valid, damaged = WriteAheadLog.scan(path)
        assert damaged
        with WriteAheadLog(path) as wal:
            wal.truncate_to(valid)
            wal.append(2, OP_DELETE, encode_delete(99))
        records, _valid, damaged = WriteAheadLog.scan(path)
        assert not damaged
        assert [(r.epoch, r.decode()[1]) for r in records] == [(1, 1), (2, 99)]

    def test_fsync_policy_validated(self, tmp_path):
        with pytest.raises(ValueError, match="fsync"):
            WriteAheadLog(tmp_path / "w", fsync="sometimes")


class TestDurableRecovery:
    def _store(self, tmp_path, dataset):
        store = DurableStore(tmp_path / "db")
        store.initialize(dataset)
        store.attach(dataset)
        return store

    def test_recover_replays_mutations(self, tmp_path):
        ds = small_dataset()
        store = self._store(tmp_path, ds)
        ds.insert(make_object(100, seed=5))
        ds.delete(ds.ids[0])
        store.close()

        recovered = DurableStore(tmp_path / "db").recover()
        assert recovered.epoch == ds.epoch
        assert recovered.ids == ds.ids
        for oid in ds.ids:
            assert np.array_equal(
                recovered[oid].instances, ds[oid].instances
            )

    def test_double_replay_is_idempotent(self, tmp_path):
        ds = small_dataset()
        store = self._store(tmp_path, ds)
        ds.insert(make_object(100, seed=5))
        ds.insert(make_object(101, seed=6))
        store.close()

        path = tmp_path / "db"
        recovered = DurableStore(path).recover()
        records, _valid, _damaged = WriteAheadLog.scan(
            DurableStore(path).wal_path
        )
        # Replaying the already-applied log again changes nothing.
        DurableStore._replay(recovered, records)
        assert recovered.epoch == ds.epoch
        assert recovered.ids == ds.ids

    def test_snapshot_newer_than_wal_tail(self, tmp_path):
        # A crash between snapshot publication and WAL truncation: the
        # snapshot already contains every WAL record.  Recovery must
        # skip them all instead of double-applying.
        ds = small_dataset()
        store = self._store(tmp_path, ds)
        ds.insert(make_object(100, seed=5))
        wal_bytes = (tmp_path / "db" / "wal.log").read_bytes()
        store.checkpoint()  # snapshot now at the live epoch, WAL reset
        store.close()
        # Restore the stale (pre-truncation) WAL beside the new snapshot.
        (tmp_path / "db" / "wal.log").write_bytes(wal_bytes)

        recovered = DurableStore(tmp_path / "db").recover()
        assert recovered.epoch == ds.epoch
        assert recovered.ids == ds.ids

    def test_epoch_gap_raises(self, tmp_path):
        ds = small_dataset()
        store = self._store(tmp_path, ds)
        ds.insert(make_object(100, seed=5))  # epoch 1
        store.close()
        # Forge a record that skips epoch 2.
        with WriteAheadLog(tmp_path / "db" / "wal.log") as wal:
            wal.append(3, OP_DELETE, encode_delete(100))
        with pytest.raises(RecoveryError, match="not contiguous"):
            DurableStore(tmp_path / "db").recover()

    def test_torn_wal_tail_recovers_prefix(self, tmp_path):
        ds = small_dataset()
        store = self._store(tmp_path, ds)
        ds.insert(make_object(100, seed=5))
        ds.insert(make_object(101, seed=6))
        store.close()
        wal_path = tmp_path / "db" / "wal.log"
        wal_path.write_bytes(wal_path.read_bytes()[:-5])

        recovered = DurableStore(tmp_path / "db").recover()
        # The torn second insert is lost; the first survives.
        assert recovered.epoch == ds.epoch - 1
        assert 100 in recovered and 101 not in recovered

    def test_attach_truncates_damage_then_logs(self, tmp_path):
        ds = small_dataset()
        store = self._store(tmp_path, ds)
        ds.insert(make_object(100, seed=5))
        store.close()
        wal_path = tmp_path / "db" / "wal.log"
        wal_path.write_bytes(wal_path.read_bytes() + b"\x07garbage")

        store2 = DurableStore(tmp_path / "db")
        recovered = store2.recover()
        store2.attach(recovered)
        recovered.insert(make_object(102, seed=7))
        store2.close()
        records, _valid, damaged = WriteAheadLog.scan(wal_path)
        assert not damaged
        assert [r.epoch for r in records] == [1, 2]

    def test_closed_store_refuses_mutations(self, tmp_path):
        ds = small_dataset()
        store = self._store(tmp_path, ds)
        store.close()
        before = ds.epoch
        with pytest.raises(RuntimeError, match="unlogged"):
            ds.insert(make_object(100, seed=5))
        assert ds.epoch == before  # aborted before any state change

    def test_recover_missing_snapshot_raises(self, tmp_path):
        with pytest.raises(RecoveryError, match="snapshot"):
            DurableStore(tmp_path / "empty").recover()

    def test_fsync_off_still_recovers_flushed_log(self, tmp_path):
        ds = small_dataset()
        store = DurableStore(tmp_path / "db", fsync="off")
        store.initialize(ds)
        store.attach(ds)
        ds.insert(make_object(100, seed=5))
        store.close()  # close flushes
        recovered = DurableStore(tmp_path / "db").recover()
        assert recovered.epoch == ds.epoch


class TestMutationListeners:
    def test_listener_fires_pre_apply_with_next_epoch(self):
        ds = small_dataset()
        seen = []
        ds.add_mutation_listener(
            lambda op, obj, epoch: seen.append((op, obj.oid, epoch, ds.epoch))
        )
        obj = make_object(100, seed=5)
        ds.insert(obj)
        ds.delete(100)
        # Fired with the commit epoch while the dataset is still at the
        # previous one (write-ahead ordering).
        assert seen == [("insert", 100, 1, 0), ("delete", 100, 2, 1)]

    def test_failing_listener_aborts_mutation(self):
        ds = small_dataset()

        def veto(op, obj, epoch):
            raise OSError("disk full")

        ds.add_mutation_listener(veto)
        with pytest.raises(OSError):
            ds.insert(make_object(100, seed=5))
        assert 100 not in ds and ds.epoch == 0
        with pytest.raises(OSError):
            ds.delete(ds.ids[0])
        assert len(ds) == 10 and ds.epoch == 0

    def test_remove_listener(self):
        ds = small_dataset()
        calls = []
        listener = lambda *a: calls.append(a)  # noqa: E731
        ds.add_mutation_listener(listener)
        ds.remove_mutation_listener(listener)
        ds.remove_mutation_listener(listener)  # absent: no-op
        ds.insert(make_object(100, seed=5))
        assert calls == []

    def test_delete_validation_precedes_notification(self):
        ds = small_dataset(n=2)
        calls = []
        ds.add_mutation_listener(lambda *a: calls.append(a))
        with pytest.raises(KeyError):
            ds.delete(12345)
        ds.delete(ds.ids[0])
        with pytest.raises(ValueError, match="last object"):
            ds.delete(ds.ids[0])
        assert len(calls) == 1  # only the one applied delete was logged
