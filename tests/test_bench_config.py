"""Tests for the benchmark configuration (repro.bench.config)."""

from repro.bench.config import PAPER, SCALE, BenchScale, PaperDefaults


class TestPaperDefaults:
    def test_table1_values(self):
        """The constants must match Table I of the paper exactly."""
        assert PAPER.sizes == (20_000, 40_000, 60_000, 80_000, 100_000)
        assert PAPER.default_size == 60_000
        assert PAPER.dims == (2, 3, 4, 5)
        assert PAPER.default_dims == 3
        assert PAPER.u_maxes == (20.0, 40.0, 60.0, 80.0, 100.0)
        assert PAPER.default_u_max == 60.0
        assert PAPER.default_delta == 1.0
        assert PAPER.default_m_max == 10
        assert PAPER.default_k == 200
        assert PAPER.default_kpartition == 10
        assert PAPER.default_kglobal == 200
        assert PAPER.n_samples == 500
        assert PAPER.domain_size == 10_000.0

    def test_real_dataset_sizes(self):
        assert PAPER.real_sizes == {
            "roads": 30_000,
            "rrlines": 36_000,
            "airports": 20_000,
        }

    def test_evaluation_constants(self):
        assert PAPER.rtree_fanout == 100
        assert PAPER.memory_budget == 5 * 1024 * 1024
        assert PAPER.page_size == 4096


class TestBenchScale:
    def test_shape_defining_parameters_match_paper(self):
        """Everything that shapes the curves is unchanged from Table I."""
        assert SCALE.dims == PAPER.dims
        assert SCALE.u_maxes == PAPER.u_maxes
        assert SCALE.deltas == PAPER.deltas
        assert SCALE.m_maxes == PAPER.m_maxes
        assert SCALE.ks == PAPER.ks
        assert SCALE.kpartitions == PAPER.kpartitions
        assert SCALE.default_kglobal == PAPER.default_kglobal
        assert SCALE.domain_size == PAPER.domain_size
        assert SCALE.page_size == PAPER.page_size
        assert SCALE.rtree_fanout == PAPER.rtree_fanout

    def test_sizes_scaled_down(self):
        assert max(SCALE.sizes) < min(PAPER.sizes)
        assert SCALE.n_samples < PAPER.n_samples
        assert all(
            SCALE.real_sizes[k] < PAPER.real_sizes[k]
            for k in PAPER.real_sizes
        )

    def test_defaults_are_members_of_sweeps(self):
        for cfg in (PAPER, SCALE):
            assert cfg.default_size in cfg.sizes
            assert cfg.default_dims in cfg.dims
            assert cfg.default_u_max in cfg.u_maxes
            assert cfg.default_delta in cfg.deltas
            assert cfg.default_m_max in cfg.m_maxes
            assert cfg.default_k in cfg.ks
            assert cfg.default_kpartition in cfg.kpartitions

    def test_frozen(self):
        import dataclasses

        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            SCALE.default_size = 1  # type: ignore[misc]

    def test_instances_independent(self):
        a, b = BenchScale(), PaperDefaults()
        assert a.real_sizes is not b.real_sizes
