"""Tests for the R-tree branch-and-prune PNNQ Step-1 baseline."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RTreePNNQ, synthetic_dataset
from repro.core import possible_nn_ids
from repro.storage import Pager


class TestRTreePNNQ:
    def test_matches_ground_truth_2d(self):
        ds = synthetic_dataset(n=150, dims=2, u_max=300, n_samples=3, seed=0)
        baseline = RTreePNNQ.build(ds)
        rng = np.random.default_rng(1)
        for _ in range(40):
            q = ds.domain.sample_points(1, rng)[0]
            assert set(baseline.candidates(q)) == possible_nn_ids(ds, q)

    def test_matches_ground_truth_3d(self):
        ds = synthetic_dataset(n=120, dims=3, u_max=500, n_samples=3, seed=2)
        baseline = RTreePNNQ.build(ds)
        rng = np.random.default_rng(3)
        for _ in range(25):
            q = ds.domain.sample_points(1, rng)[0]
            assert set(baseline.candidates(q)) == possible_nn_ids(ds, q)

    def test_result_nonempty(self):
        ds = synthetic_dataset(n=50, dims=2, n_samples=3, seed=4)
        baseline = RTreePNNQ.build(ds)
        # Some object always has non-zero probability of being the NN.
        assert baseline.candidates(ds.domain.center)

    def test_single_object(self):
        ds = synthetic_dataset(n=1, dims=2, n_samples=3, seed=5)
        baseline = RTreePNNQ.build(ds)
        assert baseline.candidates(ds.domain.center) == [0]

    def test_query_on_object_center(self):
        ds = synthetic_dataset(n=80, dims=2, n_samples=3, seed=6)
        baseline = RTreePNNQ.build(ds)
        obj = ds[17]
        ids = baseline.candidates(obj.mean)
        assert 17 in ids  # q inside u(o) => o can always be its own NN

    def test_io_charged(self):
        pager = Pager()
        ds = synthetic_dataset(n=200, dims=2, n_samples=3, seed=7)
        baseline = RTreePNNQ.build(ds, pager=pager)
        before = pager.stats.reads
        baseline.candidates(ds.domain.center)
        assert pager.stats.reads > before

    @given(st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_ground_truth_property(self, seed):
        ds = synthetic_dataset(
            n=60, dims=2, u_max=400, n_samples=2, seed=seed
        )
        baseline = RTreePNNQ.build(ds)
        rng = np.random.default_rng(seed + 1)
        q = ds.domain.sample_points(1, rng)[0]
        assert set(baseline.candidates(q)) == possible_nn_ids(ds, q)
