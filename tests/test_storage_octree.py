"""Tests for the paged octree (primary index)."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.storage import OctreeConfig, PagedOctree, Pager


def tree_2d(page_size=256, memory=1 << 20, max_depth=24):
    pager = Pager(page_size=page_size)
    config = OctreeConfig(memory_budget=memory, max_depth=max_depth)
    return (
        PagedOctree(Rect.cube(0, 100, 2), pager, config, entry_bytes=40),
        pager,
    )


class TestInsertAndQuery:
    def test_single_entry_point_query(self):
        tree, _ = tree_2d()
        tree.insert(1, Rect([10, 10], [20, 20]))
        hits = tree.point_query(np.array([15.0, 15.0]))
        assert [k for k, _, __ in hits] == [1]

    def test_point_outside_entry(self):
        tree, _ = tree_2d()
        tree.insert(1, Rect([10, 10], [20, 20]))
        # Same leaf (root is a single leaf), so the entry is returned
        # even for points outside its rect — leaf membership is by
        # region overlap, filtering is the caller's job (paper VI-A).
        hits = tree.point_query(np.array([90.0, 90.0]))
        assert len(hits) == 1

    def test_point_query_outside_domain(self):
        tree, _ = tree_2d()
        with pytest.raises(ValueError):
            tree.point_query(np.array([500.0, 0.0]))

    def test_insert_outside_domain(self):
        tree, _ = tree_2d()
        with pytest.raises(ValueError):
            tree.insert(1, Rect([200, 200], [300, 300]))

    def test_colocated_entries_chain_instead_of_splitting(self):
        tree, _ = tree_2d(page_size=256)  # 6 entries of 40B per page
        center_rect = Rect([45, 45], [55, 55])  # straddles all quadrants
        for k in range(30):
            tree.insert(k, center_rect)
        # Splitting cannot separate co-located rectangles (each contains
        # the node center), so the leaf chains pages instead of
        # recursing to max_depth.
        assert tree.n_leaves == 1
        ids = {k for k, _, __ in tree.point_query(np.array([50.0, 50.0]))}
        assert ids == set(range(30))

    def test_split_replicates_straddling_entries(self):
        tree, _ = tree_2d(page_size=256)
        # A mix: separable corner rects force a split; one straddling
        # rect must replicate into all children it overlaps.
        straddler = Rect([40, 40], [60, 60])
        tree.insert(99, straddler)
        k = 0
        for cx, cy in [(10, 10), (90, 10), (10, 90), (90, 90)]:
            for _ in range(8):
                tree.insert(k, Rect.from_center([cx, cy], 3.0))
                k += 1
        assert tree.n_leaves > 1
        # The straddler is found from any point inside it.
        for p in ([45.0, 45.0], [55.0, 45.0], [45.0, 55.0], [55.0, 55.0]):
            ids = {kk for kk, _, __ in tree.point_query(np.array(p))}
            assert 99 in ids

    def test_disjoint_entries_partition(self):
        tree, _ = tree_2d(page_size=256)
        rng = np.random.default_rng(0)
        rects = {}
        for k in range(120):
            c = rng.uniform(5, 95, 2)
            rects[k] = Rect.from_center(c, 2.0)
            tree.insert(k, rects[k])
        # Point queries return exactly the entries overlapping the leaf;
        # all entries containing the point must be present.
        for _ in range(50):
            p = rng.uniform(0, 100, 2)
            found = {k for k, _, __ in tree.point_query(p)}
            expected = {
                k for k, r in rects.items() if r.contains_point(p)
            }
            assert expected <= found

    def test_range_query(self):
        tree, _ = tree_2d(page_size=256)
        tree.insert(1, Rect([10, 10], [20, 20]))
        tree.insert(2, Rect([80, 80], [90, 90]))
        hits = {k for k, _, __ in tree.range_query(Rect([0, 0], [30, 30]))}
        assert 1 in hits

    def test_memory_budget_forces_chaining(self):
        # Budget for the root only: no splits, pages chain instead.
        config = OctreeConfig(memory_budget=100, max_depth=24)
        pager = Pager(page_size=256)
        tree = PagedOctree(
            Rect.cube(0, 100, 2), pager, config, entry_bytes=40
        )
        for k in range(40):
            tree.insert(k, Rect.from_center([50, 50], 1.0))
        assert tree.n_leaves == 1
        assert tree.n_nodes == 1
        hits = tree.point_query(np.array([50.0, 50.0]))
        assert len(hits) == 40

    def test_max_depth_limits_splitting(self):
        tree_shallow_pager = Pager(page_size=256)
        config = OctreeConfig(memory_budget=1 << 20, max_depth=1)
        tree = PagedOctree(
            Rect.cube(0, 100, 2), tree_shallow_pager, config, entry_bytes=40
        )
        for k in range(100):
            tree.insert(k, Rect.from_center([50, 50], 0.5))
        assert tree.n_nodes <= 1 + 4  # root + one level

    def test_entry_count(self):
        tree, _ = tree_2d()
        tree.insert(1, Rect([0, 0], [10, 10]))
        tree.insert(2, Rect([0, 0], [10, 10]))
        assert tree.n_entries == 2

    def test_io_charged_on_point_query(self):
        tree, pager = tree_2d()
        tree.insert(1, Rect([10, 10], [20, 20]))
        before = pager.stats.reads
        tree.point_query(np.array([15.0, 15.0]))
        assert pager.stats.reads > before


class TestLeafViews:
    def test_remove_key(self):
        tree, _ = tree_2d()
        tree.insert(1, Rect([10, 10], [20, 20]))
        tree.insert(2, Rect([10, 10], [20, 20]))
        removed = 0
        for leaf in tree.range_query_leaves(Rect([0, 0], [100, 100])):
            removed += leaf.remove_key(1)
        assert removed == 1
        ids = {k for k, _, __ in tree.point_query(np.array([15.0, 15.0]))}
        assert ids == {2}
        assert tree.n_entries == 1

    def test_add_entry(self):
        tree, _ = tree_2d()
        tree.insert(1, Rect([10, 10], [20, 20]))
        for leaf in tree.range_query_leaves(Rect([10, 10], [20, 20])):
            leaf.add_entry(5, Rect([12, 12], [13, 13]))
        ids = {k for k, _, __ in tree.point_query(np.array([15.0, 15.0]))}
        assert 5 in ids

    def test_contains_key_metadata(self):
        tree, pager = tree_2d()
        tree.insert(1, Rect([10, 10], [20, 20]))
        reads = pager.stats.reads
        leaves = tree.range_query_leaves(Rect([0, 0], [100, 100]))
        assert any(leaf.contains_key(1) for leaf in leaves)
        assert pager.stats.reads == reads  # metadata path is free

    def test_iter_leaves_cover_domain(self):
        tree, _ = tree_2d(page_size=256)
        for k in range(60):
            tree.insert(
                k,
                Rect.from_center(
                    np.random.default_rng(k).uniform(10, 90, 2), 2.0
                ),
            )
        total = sum(leaf.region.volume for leaf in tree.iter_leaves())
        assert total == pytest.approx(tree.domain.volume)
