"""Tests for the dataset generators (repro.uncertain.generators)."""

import numpy as np
import pytest

from repro.uncertain import (
    UncertainDataset,
    simulate_airports,
    simulate_roads,
    simulate_rrlines,
    synthetic_dataset,
)
from repro.uncertain.generators import clustered_dataset


class TestSyntheticDataset:
    def test_basic_shape(self):
        ds = synthetic_dataset(n=25, dims=3, seed=0)
        assert len(ds) == 25
        assert ds.dims == 3

    def test_region_side_lengths_bounded(self):
        ds = synthetic_dataset(n=40, dims=2, u_max=50.0, seed=1)
        for obj in ds:
            sides = obj.region.side_lengths
            assert np.all(sides <= 50.0 + 1e-9)

    def test_regions_inside_domain(self):
        ds = synthetic_dataset(n=40, dims=4, seed=2)
        for obj in ds:
            assert ds.domain.contains_rect(obj.region)

    def test_instances_inside_regions(self):
        ds = synthetic_dataset(n=20, dims=2, n_samples=30, seed=3)
        for obj in ds:
            assert np.all(obj.instances >= obj.region.lo - 1e-9)
            assert np.all(obj.instances <= obj.region.hi + 1e-9)

    def test_weights_normalized(self):
        ds = synthetic_dataset(n=15, dims=2, seed=4)
        for obj in ds:
            assert obj.weights.sum() == pytest.approx(1.0)

    def test_seed_determinism(self):
        a = synthetic_dataset(n=10, dims=2, seed=7)
        b = synthetic_dataset(n=10, dims=2, seed=7)
        c = synthetic_dataset(n=10, dims=2, seed=8)
        assert all(
            np.allclose(a[i].instances, b[i].instances) for i in a.ids
        )
        assert any(
            not np.allclose(a[i].region.lo, c[i].region.lo)
            for i in a.ids
        )

    def test_invalid_parameters(self):
        with pytest.raises(ValueError, match="n must be"):
            synthetic_dataset(n=0)
        with pytest.raises(ValueError, match="u_max"):
            synthetic_dataset(n=5, u_max=0.5)


class TestSimulatedRealDatasets:
    def test_roads_is_2d_and_elongated(self):
        ds = simulate_roads(n=200, seed=13)
        assert ds.dims == 2
        assert len(ds) == 200
        # Road-segment MBRs are elongated: aspect ratios well above 1
        # on average (the property distinguishing them from synthetic).
        ratios = []
        for obj in ds:
            sides = np.sort(obj.region.side_lengths)
            if sides[0] > 0:
                ratios.append(sides[1] / sides[0])
        assert np.median(ratios) > 1.5

    def test_rrlines_straighter_than_roads(self):
        """Railroads use lower heading noise; same structural type."""
        ds = simulate_rrlines(n=150, seed=17)
        assert ds.dims == 2
        assert len(ds) == 150

    def test_airports_is_3d_gps_model(self):
        ds = simulate_airports(n=100, seed=19)
        assert ds.dims == 3
        # GPS error: 10 m-radius sphere -> MBR side 20 in every dim.
        for obj in ds:
            assert np.all(obj.region.side_lengths <= 20.0 + 1e-9)

    def test_airports_clustered(self):
        """Airports concentrate near population centers: the spread of
        nearest-neighbor distances is far below uniform expectation."""
        ds = simulate_airports(n=150, seed=19)
        centers = np.array([o.region.center[:2] for o in ds])
        from scipy.spatial import cKDTree

        tree = cKDTree(centers)
        nn_dist, _ = tree.query(centers, k=2)
        mean_nn = nn_dist[:, 1].mean()
        # Uniform expectation for 150 points in 10k^2 is ~0.5/sqrt(n/A)
        # ~ 408; clustering should be far tighter.
        assert mean_nn < 300.0

    def test_all_real_datasets_valid(self):
        for builder in (simulate_roads, simulate_rrlines,
                        simulate_airports):
            ds = builder(n=50)
            assert isinstance(ds, UncertainDataset)
            for obj in ds:
                assert ds.domain.contains_rect(obj.region)
                assert obj.weights.sum() == pytest.approx(1.0)


class TestClusteredDataset:
    def test_structure(self):
        ds = clustered_dataset(n=80, dims=2, seed=5)
        assert len(ds) == 80
        assert ds.dims == 2

    def test_more_clustered_than_uniform(self):
        clustered = clustered_dataset(n=120, dims=2, seed=6)
        uniform = synthetic_dataset(n=120, dims=2, seed=6)

        def mean_nn_distance(ds):
            from scipy.spatial import cKDTree

            pts = np.array([o.region.center for o in ds])
            tree = cKDTree(pts)
            d, _ = tree.query(pts, k=2)
            return d[:, 1].mean()

        assert mean_nn_distance(clustered) < mean_nn_distance(uniform)
