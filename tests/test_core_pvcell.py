"""Tests of PV-cell semantics against the paper's lemmas (Section III/IV).

Ground truth for everything here is the Lemma 4 membership predicate,
which is exact for the rectangle model.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Rect, UncertainDataset, UncertainObject, synthetic_dataset
from repro.core import (
    monte_carlo_mbr,
    monte_carlo_volume,
    possible_nn_ids,
    pv_cell_contains,
    pv_cell_contains_many,
)
from repro.geometry import maxdist_point_rect, mindist_point_rect
from repro.uncertain import uniform_pdf


def make_obj(oid, lo, hi, seed=0):
    region = Rect(lo, hi)
    inst, w = uniform_pdf(region, 3, np.random.default_rng(seed))
    return UncertainObject(oid, region, inst, w)


def two_object_db():
    a = make_obj(0, [10, 40], [30, 60])
    b = make_obj(1, [70, 40], [90, 60])
    return UncertainDataset([a, b], domain=Rect.cube(0, 100, 2))


class TestMembership:
    def test_certain_points_reduce_to_voronoi(self):
        # Two certain points: PV-cells are classic Voronoi half-planes.
        a = UncertainObject(0, Rect([20, 50], [20, 50]), np.array([[20.0, 50.0]]))
        b = UncertainObject(1, Rect([80, 50], [80, 50]), np.array([[80.0, 50.0]]))
        ds = UncertainDataset([a, b], domain=Rect.cube(0, 100, 2))
        assert pv_cell_contains(ds, 0, np.array([30.0, 50.0]))
        assert not pv_cell_contains(ds, 0, np.array([70.0, 50.0]))
        # The bisector (x = 50) belongs to both cells (non-strict).
        assert pv_cell_contains(ds, 0, np.array([50.0, 50.0]))
        assert pv_cell_contains(ds, 1, np.array([50.0, 50.0]))

    def test_lemma5_region_inside_cell(self):
        ds = two_object_db()
        rng = np.random.default_rng(0)
        for oid in (0, 1):
            pts = ds[oid].region.sample_points(200, rng)
            assert pv_cell_contains_many(ds, oid, pts).all()

    def test_membership_matches_distance_definition(self):
        ds = two_object_db()
        rng = np.random.default_rng(1)
        pts = ds.domain.sample_points(300, rng)
        for p in pts[:40]:
            expected = maxdist_point_rect(p, ds[1].region) >= (
                mindist_point_rect(p, ds[0].region)
            )
            assert pv_cell_contains(ds, 0, p) == expected

    def test_vectorized_matches_scalar(self):
        ds = synthetic_dataset(n=40, dims=2, u_max=500, n_samples=2, seed=3)
        rng = np.random.default_rng(4)
        pts = ds.domain.sample_points(60, rng)
        vec = pv_cell_contains_many(ds, ds.ids[0], pts)
        for i, p in enumerate(pts):
            assert vec[i] == pv_cell_contains(ds, ds.ids[0], p)

    def test_singleton_database(self):
        ds = UncertainDataset([make_obj(0, [1, 1], [2, 2])])
        assert pv_cell_contains(ds, 0, np.array([1000.0, -1000.0]))

    def test_cells_cover_domain(self):
        # Every point belongs to at least one PV-cell.
        ds = synthetic_dataset(n=30, dims=2, u_max=300, n_samples=2, seed=5)
        rng = np.random.default_rng(6)
        pts = ds.domain.sample_points(100, rng)
        for p in pts:
            assert possible_nn_ids(ds, p)


class TestPossibleNNIds:
    def test_agrees_with_membership(self):
        ds = synthetic_dataset(n=50, dims=2, u_max=400, n_samples=2, seed=7)
        rng = np.random.default_rng(8)
        for _ in range(20):
            q = ds.domain.sample_points(1, rng)[0]
            ids = possible_nn_ids(ds, q)
            for oid in ds.ids:
                assert (oid in ids) == pv_cell_contains(ds, oid, q)

    @given(st.integers(0, 500))
    @settings(max_examples=10, deadline=None)
    def test_agreement_property(self, seed):
        ds = synthetic_dataset(n=25, dims=3, u_max=800, n_samples=2, seed=seed)
        rng = np.random.default_rng(seed)
        q = ds.domain.sample_points(1, rng)[0]
        ids = possible_nn_ids(ds, q)
        assert ids
        for oid in list(ids)[:5]:
            assert pv_cell_contains(ds, oid, q)


class TestMonteCarloReferences:
    def test_mbr_contains_region(self):
        ds = two_object_db()
        mbr = monte_carlo_mbr(ds, 0, n_samples=4000)
        assert mbr.contains_rect(ds[0].region)

    def test_mbr_halfplane_shape(self):
        # Object 0's PV-cell extends to the domain borders on its side
        # and stops near the bisector.
        ds = two_object_db()
        mbr = monte_carlo_mbr(ds, 0, n_samples=8000)
        assert mbr.lo[0] == pytest.approx(0.0, abs=2.0)
        assert mbr.lo[1] == pytest.approx(0.0, abs=2.0)
        assert mbr.hi[1] == pytest.approx(100.0, abs=2.0)
        assert mbr.hi[0] < 80.0  # does not reach the rival's region

    def test_volume_between_zero_and_domain(self):
        ds = two_object_db()
        v = monte_carlo_volume(ds, 0, n_samples=4000)
        assert 0 < v < ds.domain.volume
        # Symmetric database: each cell covers roughly half the domain
        # plus the overlap band around the bisector.
        assert v > 0.3 * ds.domain.volume

    def test_volume_within_box(self):
        ds = two_object_db()
        box = Rect([0, 0], [20, 20])
        v = monte_carlo_volume(ds, 0, within=box, n_samples=2000)
        assert v == pytest.approx(box.volume, rel=0.1)
