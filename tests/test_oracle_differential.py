"""Differential test oracle for all seven query engines.

The oracle enumerates the *joint instance worlds* of the database —
every combination of one instance per object, weighted by the product
of instance probabilities — and answers each query class by direct
counting.  That is a completely independent implementation path from
the engines (no candidate filters, no survival functions, no pruning
bounds, no indexes), so agreement pins down Step-1 soundness and
Step-2 probability computation at once.

Every engine is checked on randomized seeded datasets, then re-checked
after interleaved insert/delete sequences.  Mutations are driven
through a live, incrementally maintained PV-index sharing the same
dataset object, so the checks also cover:

* epoch-based invalidation (engines hold result caches that must be
  flushed on mutation rather than serving pre-mutation answers);
* incremental PV-index maintenance (the PV-backed engine must keep
  matching the oracle after every insert/delete).

Datasets are tiny (worlds grow as ``instances ** objects``) but fully
random; ties between instance distances have measure zero, so strict
comparisons are stable under any seed.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro import PVIndex, Rect, UncertainObject
from repro.core import (
    ExpectedNNEngine,
    GroupNNEngine,
    KNNEngine,
    PNNQEngine,
    ReverseNNEngine,
    TopKEngine,
    VerifierEngine,
)
from repro.uncertain import UncertainDataset, uniform_pdf

DOMAIN = Rect.cube(0.0, 100.0, 2)
N_INSTANCES = 2
TOL = 1e-9


# ----------------------------------------------------------------------
# Workload construction
# ----------------------------------------------------------------------
def make_object(oid: int, rng: np.random.Generator) -> UncertainObject:
    center = rng.uniform(10.0, 90.0, size=2)
    half = rng.uniform(2.0, 8.0)
    region = Rect(
        np.maximum(center - half, DOMAIN.lo),
        np.minimum(center + half, DOMAIN.hi),
    )
    instances, weights = uniform_pdf(region, N_INSTANCES, rng)
    return UncertainObject(oid, region, instances, weights)


def make_dataset(seed: int, n: int = 6) -> UncertainDataset:
    rng = np.random.default_rng(seed)
    return UncertainDataset(
        [make_object(i, rng) for i in range(n)], domain=DOMAIN
    )


# ----------------------------------------------------------------------
# The oracle: joint-world enumeration
# ----------------------------------------------------------------------
def worlds(objects):
    """Yield ``(probability, {oid: instance})`` joint assignments."""
    ids = [o.oid for o in objects]
    choices = [
        list(zip(o.weights, o.instances)) for o in objects
    ]
    for combo in itertools.product(*choices):
        prob = 1.0
        world = {}
        for oid, (w, inst) in zip(ids, combo):
            prob *= float(w)
            world[oid] = inst
        yield prob, world


def oracle_nn_probabilities(dataset, q) -> dict[int, float]:
    """Pr[o is the nearest neighbor of q] by enumeration."""
    objects = list(dataset)
    probs = {o.oid: 0.0 for o in objects}
    for w, world in worlds(objects):
        dists = {
            oid: float(np.linalg.norm(inst - q))
            for oid, inst in world.items()
        }
        winner = min(dists, key=dists.__getitem__)
        probs[winner] += w
    return probs


def oracle_knn_probabilities(dataset, q, k) -> dict[int, float]:
    """Pr[o is among the k nearest neighbors of q] by enumeration."""
    objects = list(dataset)
    probs = {o.oid: 0.0 for o in objects}
    for w, world in worlds(objects):
        ranked = sorted(
            world,
            key=lambda oid, w=world: float(np.linalg.norm(w[oid] - q)),
        )
        for oid in ranked[:k]:
            probs[oid] += w
    return probs


def oracle_group_probabilities(dataset, Q, aggregate) -> dict[int, float]:
    """Pr[o minimizes the aggregate distance to point set Q]."""
    agg = {"sum": np.sum, "max": np.max, "min": np.min}[aggregate]
    objects = list(dataset)
    probs = {o.oid: 0.0 for o in objects}
    for w, world in worlds(objects):
        dists = {
            oid: float(
                agg(np.linalg.norm(Q - inst[None, :], axis=1))
            )
            for oid, inst in world.items()
        }
        winner = min(dists, key=dists.__getitem__)
        probs[winner] += w
    return probs


def oracle_reverse_probabilities(dataset, qobj) -> dict[int, float]:
    """Pr[qobj is the NN of o], per object o, by enumeration."""
    objects = list(dataset)
    probs = {o.oid: 0.0 for o in objects}
    participants = objects + [qobj]
    for w, world in worlds(participants):
        q_pos = world[qobj.oid]
        for o in objects:
            p = world[o.oid]
            dq = float(np.linalg.norm(q_pos - p))
            rival = min(
                float(np.linalg.norm(world[x.oid] - p))
                for x in objects
                if x.oid != o.oid
            ) if len(objects) > 1 else float("inf")
            if dq < rival:
                probs[o.oid] += w
    return probs


def oracle_expected_distances(dataset, q) -> dict[int, float]:
    """E[dist(o, q)] per object (no enumeration needed)."""
    return {
        o.oid: float(
            np.dot(
                o.weights, np.linalg.norm(o.instances - q, axis=1)
            )
        )
        for o in dataset
    }


# ----------------------------------------------------------------------
# Comparison helpers
# ----------------------------------------------------------------------
def assert_prob_map_matches(engine_probs, oracle_probs):
    """Engine probabilities equal the oracle's (missing ids mean 0)."""
    for oid, p in oracle_probs.items():
        got = engine_probs.get(oid, 0.0)
        assert got == pytest.approx(p, abs=1e-7), (
            f"object {oid}: engine={got} oracle={p}"
        )
    for oid in engine_probs:
        assert oid in oracle_probs


def check_all_engines(engines, dataset, rng):
    """One full differential pass over the current dataset state."""
    queries = rng.uniform(15.0, 85.0, size=(3, 2))

    for q in queries:
        nn_oracle = oracle_nn_probabilities(dataset, q)
        for name in ("pnnq", "pnnq_pv"):
            result = engines[name].query(q)
            assert_prob_map_matches(result.probabilities, nn_oracle)

        knn_oracle = oracle_knn_probabilities(dataset, q, k=2)
        result = engines["knn"].query(q, k=2)
        assert_prob_map_matches(result.probabilities, knn_oracle)

        # Top-k by qualification probability: the engine ranking must
        # match the oracle's (-prob, oid) order and values.
        k = min(3, len(dataset))
        result = engines["topk"].query(q, k=k)
        want = sorted(
            ((oid, p) for oid, p in nn_oracle.items()),
            key=lambda kv: (-kv[1], kv[0]),
        )[:k]
        # Ties (typically at probability 0) permute freely, and the
        # engine may return fewer than k pairs when its candidate set
        # is smaller — anything it omits must be probability zero.
        got = [p for _, p in result.ranking]
        assert got == pytest.approx(
            [p for _, p in want[: len(got)]], abs=1e-7
        )
        assert all(
            p == pytest.approx(0.0, abs=1e-7)
            for _, p in want[len(got):]
        )
        for oid, p in result.ranking:
            assert p == pytest.approx(nn_oracle[oid], abs=1e-7)

        # Threshold decisions: p >= tau, for every reported candidate.
        tau = 0.3
        decisions = engines["verifier"].query(q, tau=tau)
        for oid, decided in decisions.items():
            p = nn_oracle[oid]
            if abs(p - tau) > TOL:  # boundary ties are float-unstable
                assert decided == (p >= tau), (
                    f"object {oid}: decision={decided} p={p}"
                )

        # Expected-distance ranking.
        exp_oracle = oracle_expected_distances(dataset, q)
        result = engines["expected"].query(q)
        assert result.best == min(
            exp_oracle, key=lambda oid: (exp_oracle[oid], oid)
        )
        for oid, e in result.ranking:
            assert e == pytest.approx(exp_oracle[oid], abs=1e-9)

    # Group NN over a two-point query set, all three aggregates.
    Q = rng.uniform(20.0, 80.0, size=(2, 2))
    for aggregate in ("sum", "max", "min"):
        result = engines["groupnn"].query(Q, aggregate=aggregate)
        assert_prob_map_matches(
            result.probabilities,
            oracle_group_probabilities(dataset, Q, aggregate),
        )

    # Reverse NN for a query object outside the database.
    qobj = make_object(10_000, rng)
    result = engines["reversenn"].query(qobj)
    reverse_oracle = oracle_reverse_probabilities(dataset, qobj)
    for oid, p in reverse_oracle.items():
        got = result.probabilities.get(oid, 0.0)
        assert got == pytest.approx(p, abs=1e-7)


def build_engines(dataset, pv_index):
    """All seven engines over one shared (mutable) dataset.

    Each gets a small LRU result cache so a stale pre-mutation answer
    would be *served* (not just stored) if epoch invalidation failed —
    the differential re-check after each mutation would then fail.
    """
    cache = {"result_cache_size": 8}
    return {
        "pnnq": PNNQEngine(dataset, **cache),
        "pnnq_pv": PNNQEngine(dataset, pv_index, **cache),
        "knn": KNNEngine(dataset, **cache),
        "topk": TopKEngine(dataset, **cache),
        "groupnn": GroupNNEngine(dataset, **cache),
        "reversenn": ReverseNNEngine(dataset, **cache),
        "verifier": VerifierEngine(dataset, **cache),
        "expected": ExpectedNNEngine(dataset, **cache),
    }


# ----------------------------------------------------------------------
# The differential test
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [11, 22, 33])
def test_all_engines_match_oracle_through_mutations(seed):
    dataset = make_dataset(seed)
    pv = PVIndex.build(dataset)
    engines = build_engines(dataset, pv)
    rng = np.random.default_rng(seed + 1)

    # Static pass over the freshly built database.
    check_all_engines(engines, dataset, rng)

    # Interleaved insert/delete sequence, re-checking after each
    # mutation.  Mutating through the PV-index keeps the indexed
    # retriever live (incremental maintenance) while every engine's
    # cached state must be epoch-flushed.
    next_oid = 100
    mutations = ["insert", "delete", "insert", "insert", "delete"]
    for step, op in enumerate(mutations):
        if op == "insert":
            pv.insert(make_object(next_oid, rng))
            next_oid += 1
        else:
            victim = int(
                rng.choice([oid for oid in dataset.ids])
            )
            pv.delete(victim)
        check_all_engines(engines, dataset, rng)

    # The epoch machinery must have fired for every engine, and the
    # maintained PV retriever must never have been discarded as stale.
    for name, engine in engines.items():
        assert engine.stats.invalidations == len(mutations), name
    assert engines["pnnq_pv"].has_index
    assert engines["pnnq_pv"].stats.retriever_fallbacks == 0
    assert engines["pnnq_pv"].retriever is pv
