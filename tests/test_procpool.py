"""Process-pool serving tier: shm lifecycle, fences, death, cleanup.

Covers the shared-memory plumbing end to end: export/attach round
trips of the packed instance store, scatter-gather answers matching
the direct database bit-for-bit, mutation fences re-exporting the
segment pool-wide, and — the regression this file exists for —
``Database.close()`` unlinking every ``/dev/shm`` segment and
terminating every worker even when a worker died mid-query.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.api import Database
from repro.service import ProcessPoolServer
from repro.testing import FaultPlan, FaultRule
from repro.uncertain import (
    UncertainObject,
    attach_shared,
    synthetic_dataset,
    uniform_pdf,
)


def _shm_segments() -> set[str]:
    try:
        return {
            name
            for name in os.listdir("/dev/shm")
            if name.startswith("repro_")
        }
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


def _make_db(n: int = 60, **kwargs) -> Database:
    return Database(
        synthetic_dataset(n=n, dims=2, seed=21, n_samples=4), **kwargs
    )


# ----------------------------------------------------------------------
# Shared segment: export / attach round trip
# ----------------------------------------------------------------------
def test_shared_store_round_trip_is_bit_identical():
    before = _shm_segments()
    ds = synthetic_dataset(n=40, dims=3, seed=7, n_samples=6)
    handle = ds.instance_store().export_shared()
    try:
        view = attach_shared(handle)
        rebuilt = view.build_dataset()
        assert len(rebuilt) == len(ds)
        assert rebuilt.epoch == ds.epoch == handle.epoch
        ids_a, los_a, his_a = ds.packed_regions()
        ids_b, los_b, his_b = rebuilt.packed_regions()
        assert np.array_equal(ids_a, ids_b)
        assert np.array_equal(los_a, los_b)
        assert np.array_equal(his_a, his_b)
        for oid in ds.ids:
            assert np.array_equal(ds[oid].instances, rebuilt[oid].instances)
            assert np.array_equal(ds[oid].weights, rebuilt[oid].weights)
        block_a = ds.instance_store().gather(ds.ids[:5])
        block_b = rebuilt.instance_store().gather(ds.ids[:5])
        assert np.array_equal(block_a.instances, block_b.instances)
        assert np.array_equal(block_a.weights, block_b.weights)
        del rebuilt, block_b
        view.close()
    finally:
        handle.unlink()
    assert _shm_segments() == before


def test_shared_store_is_read_only_in_the_attacher():
    ds = synthetic_dataset(n=10, dims=2, seed=8, n_samples=3)
    handle = ds.instance_store().export_shared()
    try:
        view = attach_shared(handle)
        rebuilt = view.build_dataset()
        store = rebuilt.instance_store()
        with pytest.raises(RuntimeError, match="read-only"):
            store.apply_insert(None, 1)
        with pytest.raises(RuntimeError, match="read-only"):
            store.apply_delete(ds.ids[0], 1)
        del rebuilt, store
        view.close()
    finally:
        handle.unlink()


def test_stale_attach_is_refused_by_epoch_stamp():
    ds = synthetic_dataset(n=10, dims=2, seed=8, n_samples=3)
    handle = ds.instance_store().export_shared()
    try:
        stale = type(handle)(
            name=handle.name,
            epoch=handle.epoch + 1,
            n=handle.n,
            size=handle.size,
            dims=handle.dims,
        )
        with pytest.raises(ValueError, match="stale shared-store attach"):
            attach_shared(stale)
    finally:
        handle.unlink()


def test_unlink_is_idempotent():
    ds = synthetic_dataset(n=10, dims=2, seed=8, n_samples=3)
    handle = ds.instance_store().export_shared()
    handle.unlink()
    handle.unlink()  # second call: segment already gone, no raise
    assert handle.name not in _shm_segments()


# ----------------------------------------------------------------------
# Pool execution
# ----------------------------------------------------------------------
def test_process_pool_answers_match_direct_database():
    before = _shm_segments()
    db = _make_db()
    reference = _make_db()
    try:
        db.serve(workers=2, mode="process")
        rng = np.random.default_rng(31)
        queries = rng.uniform(
            db.dataset.domain.lo, db.dataset.domain.hi, size=(12, 2)
        )
        for q in queries:
            got = db.nn(q)
            want = reference.nn(q, retriever="brute")
            assert dict(got.probabilities) == dict(want.probabilities)
            assert got.plan.retriever == "sharded"
        ranked = db.topk(queries[0], k=3)
        assert (
            ranked.answer.ranking
            == reference.topk(queries[0], k=3).answer.ranking
        )
    finally:
        db.close()
        reference.close()
    assert _shm_segments() == before


def test_mutation_fence_reexports_the_segment():
    before = _shm_segments()
    db = _make_db()
    try:
        server = db.serve(workers=2, mode="process")
        assert isinstance(server, ProcessPoolServer)
        first_segment = db.explain("nn").scaleout["segment"]
        rng = np.random.default_rng(32)
        target = rng.uniform(
            db.dataset.domain.lo, db.dataset.domain.hi, size=2
        )
        instances, weights = uniform_pdf(
            db.dataset[db.dataset.ids[0]].region, 4, rng
        )
        obj = UncertainObject(
            990001,
            db.dataset[db.dataset.ids[0]].region,
            instances,
            weights,
        )
        db.insert(obj)
        assert db.epoch == 1
        plan = db.explain("nn")
        assert plan.scaleout["segment"] != first_segment
        assert plan.scaleout["segment_epoch"] == 1
        # Post-fence reads see the inserted object.
        result = db.threshold(target, p=0.0)
        assert result.epoch == 1
        removed = db.delete(990001)
        assert removed.oid == 990001
        assert db.epoch == 2
    finally:
        db.close()
    assert _shm_segments() == before


def test_forced_index_retriever_is_rejected_in_process_mode():
    db = _make_db()
    try:
        db.serve(workers=1, mode="process")
        q = np.asarray([500.0, 500.0])
        with pytest.raises(Exception, match="not available in process"):
            db.nn(q, retriever="pv")
    finally:
        db.close()


def test_scaleout_telemetry_reaches_stats_and_explain():
    db = _make_db(n=120)
    try:
        db.serve(workers=2, mode="process")
        rng = np.random.default_rng(33)
        queries = rng.uniform(
            db.dataset.domain.lo, db.dataset.domain.hi, size=(24, 2)
        )
        results = [db.nn(q) for q in queries]
        delta = results[0].stats
        assert delta.shards_dispatched > 0
        assert delta.worker_busy_seconds > 0.0
        scaleout = db.explain("nn").scaleout
        assert scaleout["mode"] == "process"
        assert scaleout["workers"] == 2
        assert scaleout["shards_dispatched"] > 0
        assert scaleout["shards_pruned"] >= 0
        assert any(
            float(v) > 0 for v in scaleout["worker_busy_seconds"].values()
        )
    finally:
        db.close()


# ----------------------------------------------------------------------
# Worker death and the close() regression
# ----------------------------------------------------------------------
def test_worker_death_retries_the_chunk_and_respawns():
    """A killed worker no longer fails the query: the chunk is
    re-dispatched to the respawned replacement (or runs inline) and
    the retry is counted on the result's stats and the pool's
    recovery snapshot."""
    db = _make_db()
    try:
        server = db.serve(workers=1, mode="process")
        q = np.asarray([500.0, 500.0])
        db.nn(q)  # warm: the worker has attached and served
        victim = server._procs[0]
        victim.proc.kill()
        victim.proc.join(10)
        healed = db.nn(q)
        reference = _make_db()
        try:
            want = reference.nn(q, retriever="brute")
        finally:
            reference.close()
        assert dict(healed.probabilities) == dict(want.probabilities)
        assert healed.stats.retries >= 1
        recovery = server.recovery_snapshot()
        assert recovery["retries"] >= 1
        assert recovery["worker_restarts"] >= 1
        # The pool respawned a replacement; service continues.
        again = db.nn(q)
        assert again.plan.retriever == "sharded"
    finally:
        db.close()


def _fresh_object(db: Database, oid: int) -> UncertainObject:
    rng = np.random.default_rng(oid)
    region = db.dataset[db.dataset.ids[0]].region
    instances, weights = uniform_pdf(region, 4, rng)
    return UncertainObject(oid, region, instances, weights)


def test_fence_worker_kill_is_leak_free_and_reentrant():
    """The satellite-1 regression: a worker killed mid-fence must not
    orphan the freshly exported segment or wedge the fence.  The dead
    worker is respawned at the new epoch, the mutation succeeds, and
    a second fence runs cleanly afterwards."""
    before = _shm_segments()
    db = _make_db()
    try:
        plan = FaultPlan([FaultRule("proc.fence", "kill", wid=0)])
        server = db.serve(
            workers=2,
            mode="process",
            fault_plan=plan,
            stall_timeout=10.0,
        )
        q = np.asarray([500.0, 500.0])
        db.nn(q)
        db.insert(_fresh_object(db, 990100))  # worker 0 dies mid-fence
        assert db.epoch == 1
        live = _shm_segments() - before
        assert len(live) == 1, f"fence leaked segments: {live}"
        assert server.recovery_snapshot()["worker_restarts"] >= 1
        result = db.threshold(q, p=0.0)
        assert result.epoch == 1
        db.delete(990100)  # re-entrancy: the next fence runs clean
        assert db.epoch == 2
    finally:
        db.close()
    assert _shm_segments() == before


def test_close_unlinks_segments_even_after_worker_death():
    """The finally-path regression: a dead worker must not leak
    ``/dev/shm`` segments or zombie processes through close()."""
    before = _shm_segments()
    db = _make_db()
    server = db.serve(workers=2, mode="process")
    q = np.asarray([500.0, 500.0])
    db.nn(q)
    procs = list(server._procs)
    for handle in procs:
        handle.proc.kill()
    for handle in procs:
        handle.proc.join(10)
    db.close()
    assert _shm_segments() == before, "shared segments leaked"
    for handle in procs:
        assert not handle.proc.is_alive()
    # Respawned replacements (if any) are terminated too.
    for handle in server._procs:
        assert not handle.proc.is_alive()


def test_close_is_idempotent_and_serve_refuses_after_close():
    before = _shm_segments()
    db = _make_db()
    db.serve(workers=1, mode="process")
    db.nn(np.asarray([500.0, 500.0]))
    db.close()
    db.close()
    with pytest.raises(RuntimeError, match="closed"):
        db.serve(workers=1, mode="process")
    assert _shm_segments() == before


def test_unknown_serve_mode_is_rejected():
    db = _make_db()
    try:
        with pytest.raises(ValueError, match="unknown serve mode"):
            db.serve(workers=1, mode="fiber")
    finally:
        db.close()
