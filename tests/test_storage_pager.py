"""Tests for the simulated disk pager and page chains."""

import pytest

from repro.storage import PageChain, PageFullError, Pager


class TestPager:
    def test_allocate_counts_write(self):
        pager = Pager(page_size=128)
        pid = pager.allocate()
        assert pager.stats.writes == 1
        assert pager.n_pages == 1
        assert pager.free_space(pid) == 128

    def test_rejects_tiny_page_size(self):
        with pytest.raises(ValueError):
            Pager(page_size=16)

    def test_append_and_read(self):
        pager = Pager(page_size=128)
        pid = pager.allocate()
        pager.append(pid, 40, "a")
        pager.append(pid, 40, "b")
        assert pager.read(pid) == ["a", "b"]
        assert pager.stats.reads == 1
        assert pager.stats.writes == 3  # allocate + 2 appends

    def test_append_overflow_raises(self):
        pager = Pager(page_size=128)
        pid = pager.allocate()
        pager.append(pid, 100, "a")
        with pytest.raises(PageFullError):
            pager.append(pid, 100, "b")

    def test_record_larger_than_page_rejected(self):
        pager = Pager(page_size=128)
        pid = pager.allocate()
        with pytest.raises(ValueError):
            pager.append(pid, 256, "too big")

    def test_rewrite(self):
        pager = Pager(page_size=128)
        pid = pager.allocate()
        pager.append(pid, 100, "a")
        pager.rewrite(pid, [(30, "x"), (30, "y")])
        assert pager.read(pid) == ["x", "y"]
        assert pager.free_space(pid) == 68

    def test_rewrite_overflow_rejected(self):
        pager = Pager(page_size=128)
        pid = pager.allocate()
        with pytest.raises(ValueError):
            pager.rewrite(pid, [(100, "x"), (100, "y")])

    def test_freed_ids_are_poisoned_not_recycled(self):
        # Regression: recycled ids let a stale PageChain silently read
        # the new owner's records; freed ids must stay dead instead.
        pager = Pager(page_size=128)
        pid = pager.allocate()
        pager.free(pid)
        assert pager.n_pages == 0
        pid2 = pager.allocate()
        assert pid2 != pid  # freed ids are never reused

    def test_use_after_free_raises_keyerror(self):
        pager = Pager(page_size=128)
        pid = pager.allocate()
        pager.append(pid, 10, "a")
        pager.free(pid)
        with pytest.raises(KeyError, match="use-after-free"):
            pager.read(pid)
        with pytest.raises(KeyError, match="use-after-free"):
            pager.append(pid, 10, "b")
        with pytest.raises(KeyError, match="use-after-free"):
            pager.rewrite(pid, [(10, "c")])

    def test_stale_chain_never_aliases_new_owner(self):
        # The original bug: chain A frees its pages, chain B allocates
        # and (with recycled ids) would reuse them — A's recorded page
        # ids would then read B's records.  Now the stale read raises.
        pager = Pager(page_size=128)
        chain_a = PageChain(pager)
        chain_a.append_record(40, "mine")
        stale_ids = list(chain_a.pages)
        chain_a.free_all()
        chain_b = PageChain(pager)
        chain_b.append_record(40, "other owner")
        for pid in stale_ids:
            with pytest.raises(KeyError, match="use-after-free"):
                pager.read(pid)

    def test_free_unknown_raises(self):
        with pytest.raises(KeyError):
            Pager().free(123)

    def test_read_unknown_raises(self):
        with pytest.raises(KeyError):
            Pager().read(7)

    def test_stats_snapshot_delta(self):
        pager = Pager(page_size=128)
        pid = pager.allocate()
        before = pager.stats.snapshot()
        pager.append(pid, 10, "a")
        pager.read(pid)
        delta = pager.stats.delta(before)
        assert delta.reads == 1
        assert delta.writes == 1
        assert delta.total == 2

    def test_stats_reset(self):
        pager = Pager()
        pager.allocate()
        pager.stats.reset()
        assert pager.stats.total == 0

    def test_record_count_metadata(self):
        pager = Pager(page_size=128)
        pid = pager.allocate()
        pager.append(pid, 10, "a")
        reads_before = pager.stats.reads
        assert pager.record_count(pid) == 1
        assert pager.stats.reads == reads_before  # metadata is free


class TestPageChain:
    def test_single_page_roundtrip(self):
        pager = Pager(page_size=128)
        chain = PageChain(pager)
        chain.append_record(40, 1)
        chain.append_record(40, 2)
        assert chain.read_all() == [1, 2]
        assert len(chain) == 1

    def test_chains_new_page_when_full(self):
        pager = Pager(page_size=128)
        chain = PageChain(pager)
        for i in range(5):
            chain.append_record(60, i)
        assert len(chain) == 3  # 2 records per 128-byte page
        assert sorted(chain.read_all()) == [0, 1, 2, 3, 4]

    def test_read_all_charges_one_read_per_page(self):
        pager = Pager(page_size=128)
        chain = PageChain(pager)
        for i in range(5):
            chain.append_record(60, i)
        before = pager.stats.reads
        chain.read_all()
        assert pager.stats.reads - before == len(chain)

    def test_rewrite_all_compacts(self):
        pager = Pager(page_size=128)
        chain = PageChain(pager)
        for i in range(6):
            chain.append_record(60, i)
        assert len(chain) == 3
        chain.rewrite_all([(60, "x")])
        assert len(chain) == 1
        assert chain.read_all() == ["x"]

    def test_rewrite_all_grows(self):
        pager = Pager(page_size=128)
        chain = PageChain(pager)
        chain.rewrite_all([(60, i) for i in range(8)])
        assert len(chain) == 4
        assert sorted(chain.read_all()) == list(range(8))

    def test_rewrite_all_empty(self):
        pager = Pager(page_size=128)
        chain = PageChain(pager)
        chain.append_record(60, 1)
        chain.rewrite_all([])
        assert chain.read_all() == []
        assert len(chain) == 1  # keeps one (empty) page

    def test_free_all(self):
        pager = Pager(page_size=128)
        chain = PageChain(pager)
        for i in range(5):
            chain.append_record(60, i)
        pages = pager.n_pages
        chain.free_all()
        assert pager.n_pages == pages - 3

    def test_rewrite_all_oversized_record_is_all_or_nothing(self):
        # Regression: an oversized record used to raise ValueError from
        # Pager.rewrite midway through the loop, leaving the chain
        # half-old/half-new with the I/O already charged.
        pager = Pager(page_size=128)
        chain = PageChain(pager)
        for i in range(6):
            chain.append_record(60, i)
        before_pages = list(chain.pages)
        before_content = chain.read_all()
        before_io = pager.stats.snapshot()
        with pytest.raises(ValueError, match="exceeds page size"):
            chain.rewrite_all([(60, "new0"), (200, "too big"), (60, "new2")])
        # Chain layout, content, and write counters are untouched.
        assert chain.pages == before_pages
        assert chain.read_all() == before_content
        assert pager.stats.writes == before_io.writes

    def test_head_after_free_all_raises_clear_error(self):
        pager = Pager(page_size=128)
        chain = PageChain(pager)
        chain.free_all()
        with pytest.raises(RuntimeError, match="freed"):
            chain.head
        with pytest.raises(RuntimeError, match="freed"):
            chain.append_record(10, "x")
        with pytest.raises(RuntimeError, match="freed"):
            chain.rewrite_all([(10, "x")])
