"""Tests for the chooseCSet strategies (ALL / FS / IS)."""

import numpy as np
import pytest

from repro import (
    AllCSet,
    FixedSelection,
    IncrementalSelection,
    Rect,
    UncertainDataset,
    UncertainObject,
    synthetic_dataset,
)
from repro.core.cset import CSet
from repro.uncertain import uniform_pdf


def make_obj(oid, center, half=2.0, seed=0):
    region = Rect.from_center(center, half)
    inst, w = uniform_pdf(region, 2, np.random.default_rng(seed))
    return UncertainObject(oid, region, inst, w)


class TestCSetContainer:
    def test_from_objects(self):
        objs = [make_obj(3, [5, 5]), make_obj(7, [9, 9])]
        cset = CSet.from_objects(objs)
        assert len(cset) == 2
        assert cset.ids.tolist() == [3, 7]
        assert cset.los.shape == (2, 2)

    def test_empty(self):
        cset = CSet.from_objects([])
        assert len(cset) == 0


class TestAllCSet:
    def test_returns_everything_but_self(self):
        ds = synthetic_dataset(n=30, dims=2, n_samples=2, seed=0)
        strategy = AllCSet()
        obj = ds[ds.ids[5]]
        cset = strategy.choose(obj, ds)
        assert len(cset) == 29
        assert obj.oid not in cset.ids


class TestFixedSelection:
    def test_returns_k_nearest_means(self):
        ds = synthetic_dataset(n=60, dims=2, n_samples=2, seed=1)
        strategy = FixedSelection(k=10)
        strategy.bind(ds)
        obj = ds[ds.ids[0]]
        cset = strategy.choose(obj, ds)
        assert len(cset) == 10
        assert obj.oid not in cset.ids
        # Matches brute-force mean distances.
        means = {o.oid: o.mean for o in ds}
        brute = sorted(
            (oid for oid in ds.ids if oid != obj.oid),
            key=lambda oid: float(
                np.linalg.norm(means[oid] - obj.mean)
            ),
        )[:10]
        got_d = sorted(
            float(np.linalg.norm(means[oid] - obj.mean))
            for oid in cset.ids
        )
        want_d = sorted(
            float(np.linalg.norm(means[oid] - obj.mean)) for oid in brute
        )
        assert np.allclose(got_d, want_d)

    def test_k_capped_by_database(self):
        ds = synthetic_dataset(n=5, dims=2, n_samples=2, seed=2)
        cset = FixedSelection(k=50).choose(ds[ds.ids[0]], ds)
        assert len(cset) == 4

    def test_k_validation(self):
        with pytest.raises(ValueError):
            FixedSelection(k=0)


class TestIncrementalSelection:
    def test_skips_overlapping_regions(self):
        # o overlaps o1; o1 must not appear in the C-set (Lemma 2).
        o = make_obj(0, [50, 50], half=5)
        o1 = make_obj(1, [52, 52], half=5)   # overlaps o
        o2 = make_obj(2, [70, 50], half=2)
        o3 = make_obj(3, [30, 50], half=2)
        ds = UncertainDataset(
            [o, o1, o2, o3], domain=Rect.cube(0, 100, 2)
        )
        cset = IncrementalSelection(kpartition=1, kglobal=10).choose(o, ds)
        assert 1 not in cset.ids
        assert len(cset) >= 1

    def test_quadrant_balance(self):
        # Four objects, one per quadrant, plus a distant cluster in one
        # quadrant; IS must pick at least one object in every quadrant.
        objs = [make_obj(0, [50, 50], half=1)]
        positions = [(30, 30), (70, 30), (30, 70), (70, 70)]
        for i, pos in enumerate(positions, start=1):
            objs.append(make_obj(i, list(pos), half=1))
        # A near cluster in the lower-left quadrant that would saturate
        # a pure k-NN selection.
        for j in range(5, 10):
            objs.append(make_obj(j, [45 - j, 45 - j], half=0.5))
        ds = UncertainDataset(objs, domain=Rect.cube(0, 100, 2))
        cset = IncrementalSelection(kpartition=1, kglobal=50).choose(
            objs[0], ds
        )
        chosen = set(cset.ids.tolist())
        assert {2, 3, 4} <= chosen  # one object in each other quadrant

    def test_kglobal_caps_examination(self):
        ds = synthetic_dataset(n=200, dims=2, n_samples=2, seed=3)
        cset = IncrementalSelection(kpartition=50, kglobal=20).choose(
            ds[ds.ids[0]], ds
        )
        assert len(cset) <= 20

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            IncrementalSelection(kpartition=0)
        with pytest.raises(ValueError):
            IncrementalSelection(kglobal=0)

    def test_touched_partitions_straddling(self):
        mean = np.array([50.0, 50.0])
        cand = make_obj(1, [50, 70], half=5)  # straddles x-split plane
        parts = IncrementalSelection._touched_partitions(cand, mean, 2)
        # Above the y plane (bit 1 set), both sides of x plane.
        assert sorted(parts) == [2, 3]

    def test_touched_partitions_single(self):
        mean = np.array([50.0, 50.0])
        cand = make_obj(1, [70, 70], half=1)
        parts = IncrementalSelection._touched_partitions(cand, mean, 2)
        assert parts == [3]

    def test_notify_insert_delete_maintain_tree(self):
        ds = synthetic_dataset(n=40, dims=2, n_samples=2, seed=4)
        strategy = IncrementalSelection(kpartition=2, kglobal=30)
        strategy.bind(ds)
        new = make_obj(999, [5000, 5000], half=10)
        ds.insert(new)
        strategy.notify_insert(new)
        cset = strategy.choose(ds[ds.ids[0]], ds)
        assert len(cset) > 0
        ds.delete(999)
        strategy.notify_delete(new)
        cset2 = strategy.choose(ds[ds.ids[0]], ds)
        assert 999 not in cset2.ids


class TestStrategyRebinding:
    def test_rebinds_on_new_dataset(self):
        ds1 = synthetic_dataset(n=20, dims=2, n_samples=2, seed=5)
        ds2 = synthetic_dataset(n=25, dims=2, n_samples=2, seed=6)
        strategy = FixedSelection(k=5)
        c1 = strategy.choose(ds1[ds1.ids[0]], ds1)
        c2 = strategy.choose(ds2[ds2.ids[0]], ds2)
        assert len(c1) == 5 and len(c2) == 5
        assert set(c2.ids.tolist()) <= set(ds2.ids)
