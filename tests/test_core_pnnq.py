"""Tests for PNNQ Step 2 (probability computation) and the engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    PNNQEngine,
    PVIndex,
    Rect,
    RTreePNNQ,
    UncertainDataset,
    UncertainObject,
    synthetic_dataset,
)
from repro.core import qualification_probabilities
from repro.uncertain import point_pdf, uniform_pdf


def make_obj(oid, center, half=5.0, n=30, seed=0):
    region = Rect.from_center(center, half)
    inst, w = uniform_pdf(region, n, np.random.default_rng(seed))
    return UncertainObject(oid, region, inst, w)


def brute_force_probability(dataset, ids, query, oid):
    """O(prod of instance counts is too big) -> pairwise Monte Carlo.

    Samples joint instance assignments and counts how often oid's
    instance is strictly nearest (ties broken half/half).
    """
    rng = np.random.default_rng(99)
    n_trials = 20_000
    dists = {}
    for i in ids:
        obj = dataset[i]
        idx = rng.choice(len(obj.instances), size=n_trials, p=obj.weights)
        dists[i] = obj.distance_samples(query)[idx]
    target = dists[oid]
    others = np.stack([dists[i] for i in ids if i != oid])
    strictly_less = (target[None, :] < others).all(axis=0)
    ties = (target[None, :] == others).any(axis=0) & (
        target[None, :] <= others
    ).all(axis=0)
    return strictly_less.mean() + 0.5 * ties.mean()


class TestProbabilities:
    def test_empty_candidates(self):
        ds = synthetic_dataset(n=5, dims=2, n_samples=3, seed=0)
        assert qualification_probabilities(ds, [], np.zeros(2)) == {}

    def test_single_candidate_certain(self):
        ds = synthetic_dataset(n=5, dims=2, n_samples=3, seed=1)
        out = qualification_probabilities(ds, [ds.ids[0]], np.zeros(2))
        assert out == {ds.ids[0]: 1.0}

    def test_probabilities_sum_to_one(self):
        ds = synthetic_dataset(n=30, dims=2, u_max=500, n_samples=40, seed=2)
        rng = np.random.default_rng(3)
        from repro.core import possible_nn_ids

        for _ in range(10):
            q = ds.domain.sample_points(1, rng)[0]
            ids = sorted(possible_nn_ids(ds, q))
            probs = qualification_probabilities(ds, ids, q)
            assert sum(probs.values()) == pytest.approx(1.0, abs=1e-9)
            assert all(p >= 0 for p in probs.values())

    def test_symmetric_candidates_equal_probability(self):
        a = make_obj(0, [40, 50], half=5, seed=1)
        b = make_obj(1, [60, 50], half=5, seed=1)  # same pdf shape
        ds = UncertainDataset([a, b], domain=Rect.cube(0, 100, 2))
        q = np.array([50.0, 50.0])
        probs = qualification_probabilities(ds, [0, 1], q)
        assert probs[0] == pytest.approx(probs[1], abs=0.15)

    def test_certain_points_winner_takes_all(self):
        inst_a, w_a = point_pdf(np.array([40.0, 50.0]))
        inst_b, w_b = point_pdf(np.array([70.0, 50.0]))
        a = UncertainObject(0, Rect([40, 50], [40, 50]), inst_a, w_a)
        b = UncertainObject(1, Rect([70, 50], [70, 50]), inst_b, w_b)
        ds = UncertainDataset([a, b], domain=Rect.cube(0, 100, 2))
        q = np.array([45.0, 50.0])
        probs = qualification_probabilities(ds, [0, 1], q)
        assert probs[0] == pytest.approx(1.0)
        assert probs[1] == pytest.approx(0.0)

    def test_tie_convention_half_half(self):
        inst_a, w_a = point_pdf(np.array([40.0, 50.0]))
        inst_b, w_b = point_pdf(np.array([60.0, 50.0]))
        a = UncertainObject(0, Rect([40, 50], [40, 50]), inst_a, w_a)
        b = UncertainObject(1, Rect([60, 50], [60, 50]), inst_b, w_b)
        ds = UncertainDataset([a, b], domain=Rect.cube(0, 100, 2))
        q = np.array([50.0, 50.0])  # exactly equidistant
        probs = qualification_probabilities(ds, [0, 1], q)
        assert probs[0] == pytest.approx(0.5)
        assert probs[1] == pytest.approx(0.5)

    def test_matches_monte_carlo(self):
        objs = [
            make_obj(0, [45, 50], half=8, n=25, seed=10),
            make_obj(1, [55, 50], half=8, n=25, seed=11),
            make_obj(2, [50, 58], half=8, n=25, seed=12),
        ]
        ds = UncertainDataset(objs, domain=Rect.cube(0, 100, 2))
        q = np.array([50.0, 50.0])
        probs = qualification_probabilities(ds, [0, 1, 2], q)
        for oid in (0, 1, 2):
            mc = brute_force_probability(ds, [0, 1, 2], q, oid)
            assert probs[oid] == pytest.approx(mc, abs=0.02)

    @given(st.integers(0, 200))
    @settings(max_examples=10, deadline=None)
    def test_sum_to_one_property(self, seed):
        ds = synthetic_dataset(
            n=15, dims=2, u_max=800, n_samples=15, seed=seed
        )
        from repro.core import possible_nn_ids

        rng = np.random.default_rng(seed)
        q = ds.domain.sample_points(1, rng)[0]
        ids = sorted(possible_nn_ids(ds, q))
        probs = qualification_probabilities(ds, ids, q)
        assert sum(probs.values()) == pytest.approx(1.0, abs=1e-9)


class TestEngine:
    def test_engine_with_pv_index(self):
        ds = synthetic_dataset(n=60, dims=2, u_max=300, n_samples=20, seed=4)
        index = PVIndex.build(ds)
        engine = PNNQEngine(ds, index, secondary=index.secondary)
        result = engine.query(ds.domain.center)
        assert result.candidate_ids
        assert sum(result.probabilities.values()) == pytest.approx(1.0)
        assert engine.times.queries == 1
        assert engine.times.object_retrieval > 0
        assert engine.times.probability_computation > 0

    def test_engine_with_rtree(self):
        ds = synthetic_dataset(n=60, dims=2, u_max=300, n_samples=20, seed=5)
        baseline = RTreePNNQ.build(ds)
        engine = PNNQEngine(ds, baseline)
        result = engine.query(ds.domain.center)
        assert sum(result.probabilities.values()) == pytest.approx(1.0)

    def test_engines_agree(self):
        ds = synthetic_dataset(n=80, dims=2, u_max=300, n_samples=15, seed=6)
        pv = PNNQEngine(ds, PVIndex.build(ds))
        rt = PNNQEngine(ds, RTreePNNQ.build(ds))
        rng = np.random.default_rng(7)
        for _ in range(10):
            q = ds.domain.sample_points(1, rng)[0]
            a = pv.query(q)
            b = rt.query(q)
            assert set(a.candidate_ids) == set(b.candidate_ids)
            for oid in a.candidate_ids:
                assert a.probabilities[oid] == pytest.approx(
                    b.probabilities[oid]
                )

    def test_result_best(self):
        ds = synthetic_dataset(n=40, dims=2, n_samples=10, seed=8)
        engine = PNNQEngine(ds, RTreePNNQ.build(ds))
        result = engine.query(ds.domain.center)
        best = result.best
        assert result.probabilities[best] == max(
            result.probabilities.values()
        )

    def test_times_reset(self):
        ds = synthetic_dataset(n=20, dims=2, n_samples=5, seed=9)
        engine = PNNQEngine(ds, RTreePNNQ.build(ds))
        engine.query(ds.domain.center)
        engine.times.reset()
        assert engine.times.total == 0.0
