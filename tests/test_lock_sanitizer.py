"""The runtime lock-order sanitizer (``REPRO_SANITIZE=1``).

Seeded inversions must be detected *before* they can deadlock, with
both witness stacks attached: the stack that established the first
order and the stack attempting the conflicting acquisition.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis import locks
from repro.analysis.locks import (
    LOCK_HIERARCHY,
    LockOrderViolation,
    make_lock,
    make_rlock,
)


@pytest.fixture(autouse=True)
def _armed_sanitizer():
    was_enabled = locks.enabled()
    locks.enable()
    locks.reset_graph()
    yield
    locks.reset_graph()
    if not was_enabled:
        locks.disable()


@pytest.fixture()
def sibling_ranks():
    """Two equal-rank test locks (ordered only by the observed graph)."""
    LOCK_HIERARCHY["test.alpha"] = 1000
    LOCK_HIERARCHY["test.beta"] = 1000
    yield
    del LOCK_HIERARCHY["test.alpha"]
    del LOCK_HIERARCHY["test.beta"]


# ----------------------------------------------------------------------
# Factory semantics
# ----------------------------------------------------------------------
def test_unarmed_factory_returns_plain_primitives():
    locks.disable()
    lock = make_lock("db.lock")
    assert type(lock) is type(threading.Lock())
    rlock = make_rlock("db.lock")
    assert type(rlock) is type(threading.RLock())


def test_undeclared_lock_name_is_rejected_even_unarmed():
    locks.disable()
    with pytest.raises(KeyError, match="LOCK_HIERARCHY"):
        make_lock("db.typo_lock")
    locks.enable()
    with pytest.raises(KeyError, match="LOCK_HIERARCHY"):
        make_rlock("db.typo_lock")


def test_armed_locks_track_the_held_stack():
    a = make_rlock("db.mutation_order")
    b = make_rlock("db.lock")
    with a:
        with a:  # re-entrant: one entry, not two
            with b:
                assert locks.held_locks() == [
                    "db.mutation_order",
                    "db.lock",
                ]
        assert locks.held_locks() == ["db.mutation_order"]
    assert locks.held_locks() == []


def test_nonblocking_acquire_skips_order_checks():
    outer = make_lock("db.lock")
    inner = make_lock("db.mutation_order")  # lower rank
    with outer:
        # A try-acquire cannot block this thread, so no violation —
        # but bookkeeping still tracks it.
        assert inner.acquire(False) is True
        assert "db.mutation_order" in locks.held_locks()
        inner.release()
    assert locks.held_locks() == []


# ----------------------------------------------------------------------
# Inversion detection
# ----------------------------------------------------------------------
def test_rank_inversion_raises_with_both_witness_stacks():
    mutation_order = make_rlock("db.mutation_order")  # rank 10
    db_lock = make_rlock("db.lock")  # rank 20
    with pytest.raises(LockOrderViolation) as excinfo:
        with db_lock:
            with mutation_order:
                pass
    error = excinfo.value
    assert "db.mutation_order" in str(error)
    assert "db.lock" in str(error)
    # Both witnesses point back into this test.
    this_test = "test_rank_inversion_raises_with_both_witness_stacks"
    assert this_test in error.held_stack
    assert this_test in error.acquire_stack
    # The violation raised *before* acquiring: nothing left held.
    assert locks.held_locks() == []


def test_sibling_locks_of_one_rank_cannot_nest():
    first = make_rlock("engine.lock")
    second = make_rlock("engine.lock")
    with pytest.raises(LockOrderViolation, match="sibling"):
        with first:
            with second:
                pass


def test_cross_thread_cycle_detected_with_both_witness_stacks(
    sibling_ranks,
):
    """The order-graph half: thread one establishes alpha → beta, the
    main thread then attempts beta → alpha.  Ranks are equal, so only
    the global acquisition graph can see the cycle — and the error
    must carry the *other thread's* establishing stack as the first
    witness."""
    alpha = make_lock("test.alpha")
    beta = make_lock("test.beta")

    def establish_alpha_then_beta() -> None:
        with alpha:
            with beta:
                pass

    thread = threading.Thread(target=establish_alpha_then_beta)
    thread.start()
    thread.join()

    with pytest.raises(LockOrderViolation) as excinfo:
        with beta:
            with alpha:
                pass
    error = excinfo.value
    assert "cycle" in str(error)
    # First witness: the other thread's stack that took beta under
    # alpha.  Second witness: this thread's conflicting acquisition.
    assert "establish_alpha_then_beta" in error.held_stack
    assert (
        "test_cross_thread_cycle_detected_with_both_witness_stacks"
        in error.acquire_stack
    )


def test_legitimate_nesting_never_trips(sibling_ranks):
    """Same orders repeated from many threads build edges, no cycle."""
    alpha = make_lock("test.alpha")
    beta = make_lock("test.beta")
    errors: list[BaseException] = []

    def worker() -> None:
        try:
            for _ in range(50):
                with alpha:
                    with beta:
                        pass
        except BaseException as error:  # noqa: BLE001 - reported below
            errors.append(error)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors


# ----------------------------------------------------------------------
# The wired stack runs armed
# ----------------------------------------------------------------------
def test_database_stack_runs_clean_under_the_sanitizer():
    """Insert + query + checkpoint-free close through sanitized locks:
    the declared hierarchy matches the real acquisition order."""
    import numpy as np

    from repro.api import Database
    from repro.uncertain import (
        UncertainObject,
        synthetic_dataset,
        uniform_pdf,
    )

    ds = synthetic_dataset(n=16, dims=2, seed=3, n_samples=4)
    db = Database(ds, indexes=())
    try:
        rng = np.random.default_rng(5)
        region = ds[ds.ids[0]].region
        instances, weights = uniform_pdf(region, 4, rng)
        db.insert(UncertainObject(90_001, region, instances, weights))
        result = db.nn(np.asarray([500.0, 500.0]))
        assert result.answer is not None
    finally:
        db.close()
