"""Property tests for incremental UV-index maintenance.

The UV-index stores, per object, a cell box that is a deterministic
function of the object's candidate set (its ``k_cand`` nearest circles)
plus fixed geometry, so incremental maintenance that re-derives exactly
the cells whose candidate set changed must reproduce a from-scratch
build bit for bit.  These tests pin that equivalence three ways —
insert-one-at-a-time, insert-then-delete round trips, and a mixed
interleaving — and assert the locality that makes incremental
maintenance worth having: one update touches far fewer cells than a
rebuild recomputes.
"""

import numpy as np
import pytest

from repro import Rect, UncertainObject, UVIndex, synthetic_dataset
from repro.uncertain import UncertainDataset, uniform_pdf

#: Shared index parameters: a small candidate set keeps the affected
#: fraction low and the tests fast; boxes stay conservative, so query
#: answers are exact regardless.
PARAMS = dict(k_cand=10, delta=2.0)


def build(dataset, **overrides):
    return UVIndex(dataset, **{**PARAMS, **overrides})


def fresh_object(oid: int, domain: Rect, seed: int) -> UncertainObject:
    rng = np.random.default_rng(seed)
    center = rng.uniform(
        domain.lo + 100.0, domain.hi - 100.0, size=domain.dims
    )
    region = Rect(center - 40.0, center + 40.0)
    instances, weights = uniform_pdf(region, 2, rng)
    return UncertainObject(oid, region, instances, weights)


def assert_same_index(a: UVIndex, b: UVIndex, seed: int = 0) -> None:
    """Identical stored state and identical query answers."""
    assert set(a._boxes) == set(b._boxes)
    for oid, box in a._boxes.items():
        other = b._boxes[oid]
        assert np.allclose(box.lo, other.lo)
        assert np.allclose(box.hi, other.hi)
        assert a._cands[oid] == b._cands[oid]
    rng = np.random.default_rng(seed)
    for q in a.dataset.domain.sample_points(25, rng):
        assert set(a.candidates(q)) == set(b.candidates(q))


class TestIncrementalEquivalence:
    def test_insert_one_at_a_time_equals_scratch(self):
        ds = synthetic_dataset(n=50, dims=2, n_samples=2, seed=1)
        objs = list(ds)
        domain = ds.domain
        scratch = build(UncertainDataset(objs, domain=domain))
        live = build(UncertainDataset(objs[:1], domain=domain))
        for obj in objs[1:]:
            live.insert(obj)
        assert_same_index(scratch, live, seed=2)
        assert live.stats.inserts == len(objs) - 1
        assert live.dataset_epoch == live.dataset.epoch

    def test_insert_n_plus_k_then_delete_k_equals_scratch(self):
        ds = synthetic_dataset(n=40, dims=2, n_samples=2, seed=3)
        objs = list(ds)
        domain = ds.domain
        scratch = build(UncertainDataset(objs, domain=domain))
        live = build(UncertainDataset(objs, domain=domain))
        extras = [
            fresh_object(1000 + i, domain, seed=50 + i) for i in range(6)
        ]
        for obj in extras:
            live.insert(obj)
        for obj in extras:
            live.delete(obj.oid)
        assert_same_index(scratch, live, seed=4)
        assert live.stats.deletes == len(extras)

    def test_mixed_interleaving_equals_scratch(self):
        ds = synthetic_dataset(n=30, dims=2, n_samples=2, seed=5)
        objs = list(ds)
        domain = ds.domain
        live = build(UncertainDataset(objs, domain=domain))
        live.insert(fresh_object(500, domain, seed=6))
        live.delete(objs[3].oid)
        live.insert(fresh_object(501, domain, seed=7))
        live.delete(500)
        final = list(live.dataset)
        scratch = build(UncertainDataset(final, domain=domain))
        assert_same_index(scratch, live, seed=8)


class TestLocality:
    def test_single_update_into_500_recomputes_fewer_cells_than_rebuild(
        self,
    ):
        # The acceptance bar: one insert (and one delete) against a
        # 500-object index must re-derive strictly fewer cells than the
        # full reconstruction a rebuild pays (one cell per object).
        ds = synthetic_dataset(n=500, dims=2, n_samples=2, seed=9)
        index = build(ds, k_cand=8, delta=32.0, refine_steps=6)
        rebuild_cells = index.stats.cells_recomputed
        assert rebuild_cells == 500

        before = index.stats.cells_recomputed
        index.insert(fresh_object(9000, ds.domain, seed=10))
        insert_cells = index.stats.cells_recomputed - before
        assert 0 < insert_cells < rebuild_cells

        before = index.stats.cells_recomputed
        index.delete(9000)
        delete_cells = index.stats.cells_recomputed - before
        assert delete_cells < rebuild_cells

        # With k_cand = 8 the affected set hovers around the candidate
        # count — two orders of magnitude below the database size.
        assert insert_cells + delete_cells < 100

    def test_update_counters(self):
        ds = synthetic_dataset(n=40, dims=2, n_samples=2, seed=11)
        index = build(ds)
        assert index.stats.update_examined == 0
        index.insert(fresh_object(900, ds.domain, seed=12))
        assert index.stats.inserts == 1
        assert index.stats.update_examined == 40
        assert index.stats.update_seconds > 0


class TestMutationValidation:
    def test_insert_duplicate_id_rejected(self):
        ds = synthetic_dataset(n=10, dims=2, n_samples=2, seed=13)
        index = build(ds)
        obj = ds[ds.ids[0]]
        with pytest.raises(ValueError):
            index.insert(obj)
        assert len(index) == 10

    def test_delete_missing_rejected(self):
        ds = synthetic_dataset(n=10, dims=2, n_samples=2, seed=14)
        index = build(ds)
        with pytest.raises(KeyError):
            index.delete(123456)
        assert len(index) == 10

    def test_maintenance_refuses_bypassed_index(self):
        # A direct dataset mutation bypasses the index; later
        # index-mediated maintenance must not silently adopt the live
        # epoch (that would launder the bypassed mutation and let
        # engines keep trusting an index that never absorbed it).
        ds = synthetic_dataset(n=10, dims=2, n_samples=2, seed=17)
        index = build(ds)
        ds.insert(fresh_object(700, ds.domain, seed=18))
        with pytest.raises(ValueError, match="stale"):
            index.insert(fresh_object(701, ds.domain, seed=19))
        with pytest.raises(ValueError, match="stale"):
            index.delete(ds.ids[0])

    def test_delete_returns_object_and_shrinks(self):
        ds = synthetic_dataset(n=12, dims=2, n_samples=2, seed=15)
        index = build(ds)
        victim = ds.ids[5]
        removed = index.delete(victim)
        assert removed.oid == victim
        assert victim not in ds
        assert len(index) == 11
        rng = np.random.default_rng(16)
        for q in ds.domain.sample_points(10, rng):
            assert victim not in index.candidates(q)
