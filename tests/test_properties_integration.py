"""Cross-module property-based tests (hypothesis).

These tests exercise whole pipelines on randomized inputs and assert
the paper's structural invariants:

* every Step-1 retriever (PV-index, R-tree, UV-index) returns exactly
  the ground-truth candidate set (Lemma 4 formulation);
* UBRs are conservative: no sampled PV-cell point falls outside its UBR;
* incremental maintenance is equivalent to rebuilding from scratch;
* Step-2 probabilities form a distribution and are retriever-agnostic.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import PVIndex, RTreePNNQ, UncertainObject, UVIndex, uniform_pdf
from repro.core import PNNQEngine, qualification_probabilities
from repro.core.pvcell import pv_cell_contains_many, possible_nn_ids
from repro.geometry import Rect
from repro.uncertain import UncertainDataset

DOMAIN_SIDE = 1000.0

relaxed = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def small_datasets(draw, dims=2, min_objects=4, max_objects=14):
    """Random uncertain datasets with moderately overlapping regions."""
    n = draw(st.integers(min_objects, max_objects))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    domain = Rect.cube(0.0, DOMAIN_SIDE, dims)
    objects = []
    for oid in range(n):
        half = rng.uniform(5.0, 120.0, size=dims)
        center = rng.uniform(half, DOMAIN_SIDE - half)
        region = Rect(center - half, center + half)
        instances, weights = uniform_pdf(region, 25, rng)
        objects.append(
            UncertainObject(
                oid=oid, region=region, instances=instances,
                weights=weights,
            )
        )
    return UncertainDataset(objects, domain=domain)


@relaxed
@given(dataset=small_datasets(), seed=st.integers(0, 1000))
def test_all_retrievers_match_ground_truth(dataset, seed):
    rng = np.random.default_rng(seed)
    queries = rng.uniform(0.0, DOMAIN_SIDE, size=(5, 2))
    exact = [
        PVIndex.build(dataset.copy()),
        RTreePNNQ.build(dataset.copy()),
    ]
    # The UV-index bounds each rectangle by its circumscribed circle
    # ([9]'s native model), so its candidate set is a conservative
    # superset of the rectangle-model ground truth.
    uv = UVIndex.build(dataset.copy())
    for q in queries:
        truth = possible_nn_ids(dataset, q)
        for retriever in exact:
            got = set(retriever.candidates(q))
            assert got == truth, (
                f"{type(retriever).__name__} returned {got}, "
                f"expected {truth} at {q}"
            )
        assert set(uv.candidates(q)) >= truth


@relaxed
@given(dataset=small_datasets(), seed=st.integers(0, 1000))
def test_ubrs_conservative_over_sampled_cells(dataset, seed):
    index = PVIndex.build(dataset.copy())
    rng = np.random.default_rng(seed)
    points = rng.uniform(0.0, DOMAIN_SIDE, size=(256, 2))
    for oid in dataset.ids:
        inside = pv_cell_contains_many(dataset, oid, points)
        if not inside.any():
            continue
        ubr = index.ubr_of(oid)
        for p in points[inside]:
            assert ubr.contains_point(p), (
                f"PV-cell point {p} of object {oid} outside UBR {ubr}"
            )


@relaxed
@given(
    dataset=small_datasets(min_objects=6, max_objects=12),
    seed=st.integers(0, 1000),
)
def test_incremental_maintenance_equals_rebuild(dataset, seed):
    """Random delete+insert sequences preserve query correctness."""
    rng = np.random.default_rng(seed)
    index = PVIndex.build(dataset)

    # Delete two objects, insert one fresh object, delete another.
    victims = rng.choice(dataset.ids, size=3, replace=False)
    index.delete(int(victims[0]))
    index.delete(int(victims[1]))

    half = rng.uniform(10.0, 80.0, size=2)
    center = rng.uniform(half, DOMAIN_SIDE - half)
    region = Rect(center - half, center + half)
    instances, weights = uniform_pdf(region, 25, rng)
    fresh = UncertainObject(
        oid=max(dataset.ids) + 1000, region=region,
        instances=instances, weights=weights,
    )
    index.insert(fresh)
    index.delete(int(victims[2]))

    queries = rng.uniform(0.0, DOMAIN_SIDE, size=(6, 2))
    for q in queries:
        truth = possible_nn_ids(index.dataset, q)
        assert set(index.candidates(q)) == truth


@relaxed
@given(dataset=small_datasets(), seed=st.integers(0, 1000))
def test_probabilities_form_distribution(dataset, seed):
    rng = np.random.default_rng(seed)
    q = rng.uniform(100.0, DOMAIN_SIDE - 100.0, size=2)
    ids = sorted(possible_nn_ids(dataset, q))
    probs = qualification_probabilities(dataset, ids, q)
    assert set(probs) == set(ids)
    for p in probs.values():
        assert 0.0 <= p <= 1.0
    assert sum(probs.values()) == pytest.approx(1.0, abs=1e-9)


@relaxed
@given(dataset=small_datasets(), seed=st.integers(0, 1000))
def test_step2_retriever_agnostic(dataset, seed):
    """PNNQ probabilities are identical whichever index ran Step 1."""
    rng = np.random.default_rng(seed)
    q = rng.uniform(0.0, DOMAIN_SIDE, size=2)
    pv = PNNQEngine(dataset, PVIndex.build(dataset.copy()))
    rt = PNNQEngine(dataset, RTreePNNQ.build(dataset.copy()))
    p1 = pv.query(q).probabilities
    p2 = rt.query(q).probabilities
    assert set(p1) == set(p2)
    for oid in p1:
        assert p1[oid] == pytest.approx(p2[oid], abs=1e-12)


@relaxed
@given(dataset=small_datasets(dims=3, max_objects=10),
       seed=st.integers(0, 1000))
def test_three_dimensional_pipeline(dataset, seed):
    """The full pipeline holds in 3D (the paper's default d)."""
    rng = np.random.default_rng(seed)
    index = PVIndex.build(dataset.copy())
    for q in rng.uniform(0.0, DOMAIN_SIDE, size=(4, 3)):
        assert set(index.candidates(q)) == possible_nn_ids(dataset, q)


class TestFailureModes:
    """Error paths a downstream user will eventually hit."""

    @pytest.fixture(scope="class")
    def built(self):
        rng = np.random.default_rng(0)
        domain = Rect.cube(0.0, DOMAIN_SIDE, 2)
        objects = []
        for oid in range(8):
            center = rng.uniform(100, 900, size=2)
            region = Rect.from_center(center, [30.0, 30.0])
            instances, weights = uniform_pdf(region, 20, rng)
            objects.append(
                UncertainObject(
                    oid=oid, region=region, instances=instances,
                    weights=weights,
                )
            )
        dataset = UncertainDataset(objects, domain=domain)
        return PVIndex.build(dataset)

    def test_duplicate_insert_rejected(self, built):
        existing = built.dataset[built.dataset.ids[0]]
        with pytest.raises(ValueError, match="duplicate"):
            built.insert(existing)

    def test_delete_unknown_id_rejected(self, built):
        with pytest.raises(KeyError):
            built.delete(99_999)

    def test_query_outside_domain_rejected(self, built):
        with pytest.raises(ValueError):
            built.candidates(np.array([-50.0, 50.0]))

    def test_insert_outside_domain_rejected(self, built):
        region = Rect([-10.0, 0.0], [10.0, 20.0])
        instances, weights = uniform_pdf(
            region, 10, np.random.default_rng(1)
        )
        bad = UncertainObject(
            oid=777, region=region, instances=instances, weights=weights
        )
        with pytest.raises(ValueError, match="outside the domain"):
            built.insert(bad)

    def test_cannot_delete_last_object(self):
        rng = np.random.default_rng(2)
        domain = Rect.cube(0.0, 100.0, 2)
        region = Rect.from_center([50.0, 50.0], [5.0, 5.0])
        instances, weights = uniform_pdf(region, 10, rng)
        dataset = UncertainDataset(
            [UncertainObject(oid=0, region=region,
                             instances=instances, weights=weights)],
            domain=domain,
        )
        index = PVIndex.build(dataset)
        with pytest.raises(ValueError, match="last object"):
            index.delete(0)
