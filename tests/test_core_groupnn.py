"""Tests for probabilistic group NN queries (repro.core.groupnn)."""

import numpy as np
import pytest

from repro import PVIndex, UncertainObject, synthetic_dataset
from repro.core import GroupNNEngine, qualification_probabilities
from repro.geometry import Rect
from repro.uncertain import UncertainDataset


@pytest.fixture(scope="module")
def dense():
    return synthetic_dataset(
        n=50, dims=2, u_max=2000.0, n_samples=50, seed=21
    )


def point_object(oid, coords):
    p = np.asarray(coords, dtype=np.float64)
    return UncertainObject(
        oid=oid,
        region=Rect.from_point(p),
        instances=p[None, :],
        weights=np.array([1.0]),
    )


class TestGroupNNCandidates:
    @pytest.mark.parametrize("aggregate", ["sum", "max", "min"])
    def test_filter_keeps_all_possible_winners(self, dense, aggregate):
        """Any instance-level winner must survive the Step-1 filter."""
        engine = GroupNNEngine(dense)
        rng = np.random.default_rng(3)
        queries = rng.uniform(2000, 8000, size=(3, 2))
        ids = engine.candidates(queries, aggregate)
        # Monte-Carlo over instance combinations: sample one instance
        # per object, find the aggregate-distance winner, and confirm
        # it is among the candidates.
        agg = {"sum": np.sum, "max": np.max, "min": np.min}[aggregate]
        for trial in range(30):
            sample_rng = np.random.default_rng(trial)
            best_oid, best_val = None, np.inf
            for obj in dense:
                i = sample_rng.integers(len(obj.instances))
                inst = obj.instances[i]
                val = agg(
                    np.sqrt(((inst[None, :] - queries) ** 2).sum(axis=1))
                )
                if val < best_val:
                    best_oid, best_val = obj.oid, val
            assert best_oid in ids, (
                f"winner {best_oid} filtered out for {aggregate}"
            )

    def test_single_query_point_equals_pnnq_step1(self, dense):
        from repro.core.pvcell import possible_nn_ids

        engine = GroupNNEngine(dense)
        query = np.array([4500.0, 5500.0])
        ids = set(engine.candidates(query[None, :], "sum"))
        assert ids == possible_nn_ids(dense, query)

    def test_min_aggregate_with_retriever_matches_without(self, dense):
        index = PVIndex.build(dense.copy())
        with_idx = GroupNNEngine(dense, retriever=index)
        without = GroupNNEngine(dense)
        queries = np.array([[3000.0, 3000.0], [7000.0, 7000.0]])
        assert set(with_idx.candidates(queries, "min")) == set(
            without.candidates(queries, "min")
        )


class TestGroupNNProbabilities:
    @pytest.mark.parametrize("aggregate", ["sum", "max", "min"])
    def test_probabilities_sum_to_one(self, dense, aggregate):
        engine = GroupNNEngine(dense)
        queries = np.array([[4000.0, 4000.0], [6000.0, 5000.0]])
        result = engine.query(queries, aggregate)
        assert sum(result.probabilities.values()) == pytest.approx(
            1.0, abs=1e-9
        )

    def test_single_point_group_equals_pnnq_step2(self, dense):
        engine = GroupNNEngine(dense)
        query = np.array([5200.0, 4800.0])
        result = engine.query(query[None, :], "sum")
        expected = qualification_probabilities(
            dense, result.candidate_ids, query
        )
        for oid, p in result.probabilities.items():
            assert p == pytest.approx(expected[oid], abs=1e-9)

    def test_certain_objects_deterministic_winner(self):
        """With point pdfs the group NN is deterministic."""
        domain = Rect.cube(0.0, 100.0, 2)
        objects = [
            point_object(0, [10.0, 10.0]),
            point_object(1, [50.0, 50.0]),
            point_object(2, [90.0, 90.0]),
        ]
        dataset = UncertainDataset(objects, domain=domain)
        engine = GroupNNEngine(dataset)
        queries = np.array([[40.0, 40.0], [60.0, 60.0]])
        result = engine.query(queries, "sum")
        assert result.best == 1
        assert result.probabilities[1] == pytest.approx(1.0)

    def test_min_aggregate_favors_either_extreme(self):
        """min-aggregate: nearest to ANY query point wins."""
        domain = Rect.cube(0.0, 100.0, 2)
        objects = [
            point_object(0, [10.0, 10.0]),
            point_object(1, [90.0, 90.0]),
            point_object(2, [50.0, 10.0]),
        ]
        dataset = UncertainDataset(objects, domain=domain)
        engine = GroupNNEngine(dataset)
        queries = np.array([[10.0, 12.0], [90.0, 88.0]])
        result = engine.query(queries, "min")
        # Objects 0 and 1 are each within 2 units of a query point;
        # object 2 is 40+ away from both.  A tie between 0 and 1.
        assert set(result.probabilities) == {0, 1}
        assert result.probabilities[0] == pytest.approx(0.5, abs=1e-9)
        assert result.probabilities[1] == pytest.approx(0.5, abs=1e-9)


class TestGroupNNValidation:
    def test_empty_queries_rejected(self, dense):
        engine = GroupNNEngine(dense)
        with pytest.raises(ValueError, match="non-empty"):
            engine.query(np.empty((0, 2)))

    def test_wrong_dims_rejected(self, dense):
        engine = GroupNNEngine(dense)
        with pytest.raises(ValueError, match="dimensionality"):
            engine.query(np.array([[1.0, 2.0, 3.0]]))

    def test_unknown_aggregate_rejected(self, dense):
        engine = GroupNNEngine(dense)
        with pytest.raises(KeyError):
            engine.candidates(np.array([[1.0, 2.0]]), "median")
