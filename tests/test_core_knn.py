"""Tests for probabilistic k-NN queries (repro.core.knn)."""

import numpy as np
import pytest

from repro import PVIndex, UncertainObject, synthetic_dataset
from repro.core import KNNEngine, qualification_probabilities
from repro.core.pvcell import possible_nn_ids
from repro.geometry import Rect
from repro.uncertain import UncertainDataset


@pytest.fixture(scope="module")
def dense():
    return synthetic_dataset(
        n=45, dims=2, u_max=2000.0, n_samples=50, seed=31
    )


def point_object(oid, coords):
    p = np.asarray(coords, dtype=np.float64)
    return UncertainObject(
        oid=oid,
        region=Rect.from_point(p),
        instances=p[None, :],
        weights=np.array([1.0]),
    )


class TestKNNStep1:
    def test_k1_equals_pnnq_candidates(self, dense):
        engine = KNNEngine(dense)
        rng = np.random.default_rng(1)
        for q in rng.uniform(0, 10_000, size=(6, 2)):
            assert set(engine.candidates(q, k=1)) == possible_nn_ids(
                dense, q
            )

    def test_k1_uses_retriever(self, dense):
        index = PVIndex.build(dense.copy())
        engine = KNNEngine(dense, retriever=index)
        q = np.array([5000.0, 5000.0])
        assert set(engine.candidates(q, k=1)) == set(
            index.candidates(q)
        )

    def test_candidates_grow_with_k(self, dense):
        engine = KNNEngine(dense)
        q = np.array([5000.0, 5000.0])
        sizes = [len(engine.candidates(q, k=k)) for k in (1, 2, 4, 8)]
        assert sizes == sorted(sizes)

    def test_k_geq_database_returns_everything(self, dense):
        engine = KNNEngine(dense)
        q = np.array([100.0, 100.0])
        ids = engine.candidates(q, k=len(dense) + 5)
        assert set(ids) == set(dense.ids)

    def test_filter_keeps_all_possible_members(self, dense):
        """Monte-Carlo: any sampled top-k member must be a candidate."""
        engine = KNNEngine(dense)
        q = np.array([4800.0, 5100.0])
        k = 3
        ids = set(engine.candidates(q, k=k))
        for trial in range(25):
            rng = np.random.default_rng(trial)
            dists = []
            for obj in dense:
                inst = obj.instances[rng.integers(len(obj.instances))]
                dists.append((np.linalg.norm(inst - q), obj.oid))
            dists.sort()
            for _, oid in dists[:k]:
                assert oid in ids

    def test_invalid_k(self, dense):
        engine = KNNEngine(dense)
        with pytest.raises(ValueError, match="k must be >= 1"):
            engine.candidates(np.array([0.0, 0.0]), k=0)


class TestKNNStep2:
    def test_k1_matches_pnnq_probabilities(self, dense):
        engine = KNNEngine(dense)
        rng = np.random.default_rng(2)
        for q in rng.uniform(2000, 8000, size=(4, 2)):
            result = engine.query(q, k=1)
            expected = qualification_probabilities(
                dense, result.candidate_ids, q
            )
            for oid, p in result.probabilities.items():
                assert p == pytest.approx(expected[oid], abs=1e-9)

    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_probabilities_sum_to_k(self, dense, k):
        """Expected top-k membership count is exactly k."""
        engine = KNNEngine(dense)
        q = np.array([5000.0, 5000.0])
        result = engine.query(q, k=k)
        total = sum(result.probabilities.values())
        assert total == pytest.approx(
            min(k, len(result.candidate_ids)), abs=1e-6
        )

    def test_probabilities_monotone_in_k(self, dense):
        """Pr[in top-(k+1)] >= Pr[in top-k] for every object."""
        engine = KNNEngine(dense)
        q = np.array([4500.0, 5500.0])
        r2 = engine.query(q, k=2)
        r4 = engine.query(q, k=4)
        for oid, p2 in r2.probabilities.items():
            p4 = r4.probabilities.get(oid, 0.0)
            assert p4 >= p2 - 1e-9

    def test_certain_points_deterministic(self):
        """Point pdfs: top-k probabilities are exactly 0/1."""
        domain = Rect.cube(0.0, 100.0, 1)
        objects = [
            point_object(i, [10.0 * (i + 1)]) for i in range(5)
        ]
        dataset = UncertainDataset(objects, domain=domain)
        engine = KNNEngine(dataset)
        result = engine.query(np.array([12.0]), k=2)
        # Positions 10, 20, 30, 40, 50; query at 12 -> NNs are 0, 1.
        assert result.probabilities[0] == pytest.approx(1.0)
        assert result.probabilities[1] == pytest.approx(1.0)
        for oid in (2, 3, 4):
            assert result.probabilities.get(oid, 0.0) == pytest.approx(
                0.0, abs=1e-12
            )

    def test_top_helper_orders_descending(self, dense):
        engine = KNNEngine(dense)
        result = engine.query(np.array([3000.0, 3000.0]), k=3)
        top = result.top()
        probs = [p for _o, p in top]
        assert probs == sorted(probs, reverse=True)
        assert result.top(1) == top[:1]

    def test_times_accumulate(self, dense):
        engine = KNNEngine(dense)
        engine.query(np.array([1.0, 1.0]), k=2)
        assert engine.times.queries == 1
        assert engine.times.total > 0
