"""Tests for the R*-tree substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect, mindist_point_rect
from repro.rtree import RStarTree
from repro.storage import Pager


def random_rects(n, dims=2, seed=0, extent=100.0, size=3.0):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(size, extent - size, size=(n, dims))
    halves = rng.uniform(0.1, size, size=(n, dims))
    return [Rect(c - h, c + h) for c, h in zip(centers, halves)]


def build_tree(rects, max_entries=8, pager=None):
    tree = RStarTree(
        dims=rects[0].dims, max_entries=max_entries, pager=pager
    )
    for i, r in enumerate(rects):
        tree.insert(i, r)
    return tree


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            RStarTree(dims=0)
        with pytest.raises(ValueError):
            RStarTree(dims=2, max_entries=3)
        with pytest.raises(ValueError):
            RStarTree(dims=2, max_entries=8, min_entries=1)
        with pytest.raises(ValueError):
            RStarTree(dims=2, max_entries=8, min_entries=7)

    def test_insert_dim_mismatch(self):
        tree = RStarTree(dims=2, max_entries=8)
        with pytest.raises(ValueError):
            tree.insert(0, Rect.cube(0, 1, 3))

    def test_invariants_small(self):
        tree = build_tree(random_rects(30, seed=1))
        tree.check_invariants()
        assert len(tree) == 30

    def test_invariants_large(self):
        tree = build_tree(random_rects(500, seed=2), max_entries=8)
        tree.check_invariants()
        assert tree.height >= 3

    def test_invariants_3d(self):
        tree = build_tree(random_rects(200, dims=3, seed=3))
        tree.check_invariants()

    def test_root_mbr_covers_everything(self):
        rects = random_rects(100, seed=4)
        tree = build_tree(rects)
        for r in rects:
            assert tree.root_mbr.contains_rect(r)

    @given(st.integers(10, 120), st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_invariants_property(self, n, seed):
        tree = build_tree(random_rects(n, seed=seed))
        tree.check_invariants()


class TestQueries:
    def test_range_query_exact(self):
        rects = random_rects(200, seed=5)
        tree = build_tree(rects)
        window = Rect([20, 20], [50, 60])
        expected = {i for i, r in enumerate(rects) if r.intersects(window)}
        got = {e.key for e in tree.range_query(window)}
        assert got == expected

    def test_point_query_exact(self):
        rects = random_rects(200, seed=6)
        tree = build_tree(rects)
        p = np.array([42.0, 57.0])
        expected = {i for i, r in enumerate(rects) if r.contains_point(p)}
        got = {e.key for e in tree.point_query(p)}
        assert got == expected

    def test_iter_entries_complete(self):
        rects = random_rects(77, seed=7)
        tree = build_tree(rects)
        assert {e.key for e in tree.iter_entries()} == set(range(77))


class TestNearestNeighbor:
    def test_nearest_order(self):
        rects = random_rects(150, seed=8)
        tree = build_tree(rects)
        q = np.array([50.0, 50.0])
        seq = [d for d, _ in tree.nearest_iter(q)]
        assert seq == sorted(seq)

    def test_nearest_matches_brute_force(self):
        rects = random_rects(150, seed=9)
        tree = build_tree(rects)
        q = np.array([31.0, 74.0])
        brute = sorted(
            range(len(rects)), key=lambda i: mindist_point_rect(q, rects[i])
        )
        got = [e.key for _, e in tree.knn(q, 10)]
        brute_d = [mindist_point_rect(q, rects[i]) for i in brute[:10]]
        got_d = [mindist_point_rect(q, rects[k]) for k in got]
        assert np.allclose(got_d, brute_d)

    def test_knn_with_skip(self):
        rects = random_rects(50, seed=10)
        tree = build_tree(rects)
        q = rects[7].center
        got = [e.key for _, e in tree.knn(q, 5, skip=lambda e: e.key == 7)]
        assert 7 not in got

    def test_knn_k_validation(self):
        tree = build_tree(random_rects(10, seed=0))
        with pytest.raises(ValueError):
            tree.knn(np.zeros(2), 0)

    def test_knn_more_than_size(self):
        tree = build_tree(random_rects(5, seed=0))
        got = tree.knn(np.zeros(2), 50)
        assert len(got) == 5


class TestDeletion:
    def test_delete_existing(self):
        rects = random_rects(100, seed=11)
        tree = build_tree(rects)
        assert tree.delete(13, rects[13])
        assert len(tree) == 99
        tree.check_invariants()
        assert 13 not in {e.key for e in tree.iter_entries()}

    def test_delete_missing(self):
        rects = random_rects(20, seed=12)
        tree = build_tree(rects)
        assert not tree.delete(999, rects[0])
        assert len(tree) == 20

    def test_delete_many_keeps_invariants(self):
        rects = random_rects(300, seed=13)
        tree = build_tree(rects)
        rng = np.random.default_rng(0)
        victims = rng.choice(300, size=200, replace=False)
        for v in victims:
            assert tree.delete(int(v), rects[v])
        tree.check_invariants()
        survivors = {e.key for e in tree.iter_entries()}
        assert survivors == set(range(300)) - {int(v) for v in victims}

    def test_delete_then_query(self):
        rects = random_rects(120, seed=14)
        tree = build_tree(rects)
        for v in range(0, 120, 3):
            tree.delete(v, rects[v])
        window = Rect([10, 10], [90, 90])
        expected = {
            i
            for i, r in enumerate(rects)
            if i % 3 != 0 and r.intersects(window)
        }
        assert {e.key for e in tree.range_query(window)} == expected

    def test_delete_down_to_empty_root(self):
        rects = random_rects(50, seed=15)
        tree = build_tree(rects)
        for i in range(49):
            tree.delete(i, rects[i])
        assert len(tree) == 1
        tree.check_invariants()


class TestPagedIO:
    def test_leaf_reads_charged(self):
        pager = Pager()
        tree = build_tree(random_rects(200, seed=16), pager=pager)
        before = pager.stats.reads
        tree.range_query(Rect([0, 0], [100, 100]))
        assert pager.stats.reads > before

    def test_point_query_cheaper_than_full_scan(self):
        pager = Pager()
        tree = build_tree(
            random_rects(400, seed=17), max_entries=16, pager=pager
        )
        before = pager.stats.reads
        tree.point_query(np.array([10.0, 10.0]))
        point_cost = pager.stats.reads - before
        before = pager.stats.reads
        tree.range_query(Rect([0, 0], [100, 100]))
        scan_cost = pager.stats.reads - before
        assert point_cost < scan_cost
