"""Tests for the probabilistic-verifier bounds and VerifierEngine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PVIndex, RTreePNNQ, synthetic_dataset
from repro.core import (
    ProbabilityBounds,
    VerifierEngine,
    possible_nn_ids,
    probability_bounds,
    qualification_probabilities,
)


class TestProbabilityBounds:
    def test_validation(self):
        with pytest.raises(ValueError):
            ProbabilityBounds(0.7, 0.3)
        with pytest.raises(ValueError):
            ProbabilityBounds(-0.5, 0.5)
        with pytest.raises(ValueError):
            ProbabilityBounds(0.5, 1.5)

    def test_contains(self):
        b = ProbabilityBounds(0.2, 0.8)
        assert b.contains(0.5)
        assert not b.contains(0.9)

    def test_empty_and_singleton(self):
        ds = synthetic_dataset(n=5, dims=2, n_samples=5, seed=0)
        assert probability_bounds(ds, [], np.zeros(2)) == {}
        single = probability_bounds(ds, [ds.ids[0]], np.zeros(2))
        assert single[ds.ids[0]].lower == 1.0

    def test_n_bins_validation(self):
        ds = synthetic_dataset(n=5, dims=2, n_samples=5, seed=0)
        with pytest.raises(ValueError):
            probability_bounds(
                ds, ds.ids[:2], np.zeros(2), n_bins=0
            )

    def test_bounds_bracket_exact(self):
        ds = synthetic_dataset(n=40, dims=2, u_max=500, n_samples=30, seed=1)
        rng = np.random.default_rng(2)
        for _ in range(10):
            q = ds.domain.sample_points(1, rng)[0]
            ids = sorted(possible_nn_ids(ds, q))
            exact = qualification_probabilities(ds, ids, q)
            bounds = probability_bounds(ds, ids, q, n_bins=8)
            for oid in ids:
                assert bounds[oid].contains(exact[oid]), (
                    oid,
                    bounds[oid],
                    exact[oid],
                )

    def test_more_bins_tighter(self):
        ds = synthetic_dataset(n=30, dims=2, u_max=500, n_samples=40, seed=3)
        q = ds.domain.center
        ids = sorted(possible_nn_ids(ds, q))
        if len(ids) < 2:
            pytest.skip("degenerate query")
        coarse = probability_bounds(ds, ids, q, n_bins=2)
        fine = probability_bounds(ds, ids, q, n_bins=16)
        width_coarse = sum(b.upper - b.lower for b in coarse.values())
        width_fine = sum(b.upper - b.lower for b in fine.values())
        assert width_fine <= width_coarse + 1e-9

    @given(st.integers(0, 100))
    @settings(max_examples=8, deadline=None)
    def test_bracket_property(self, seed):
        ds = synthetic_dataset(
            n=20, dims=2, u_max=700, n_samples=20, seed=seed
        )
        rng = np.random.default_rng(seed)
        q = ds.domain.sample_points(1, rng)[0]
        ids = sorted(possible_nn_ids(ds, q))
        exact = qualification_probabilities(ds, ids, q)
        bounds = probability_bounds(ds, ids, q, n_bins=6)
        for oid in ids:
            assert bounds[oid].contains(exact[oid])


class TestVerifierEngine:
    def test_decisions_match_exact(self):
        ds = synthetic_dataset(n=60, dims=2, u_max=400, n_samples=25, seed=4)
        retriever = RTreePNNQ.build(ds)
        engine = VerifierEngine(ds, retriever)
        rng = np.random.default_rng(5)
        tau = 0.2
        for _ in range(10):
            q = ds.domain.sample_points(1, rng)[0]
            decisions = engine.query(q, tau=tau)
            ids = sorted(decisions)
            exact = qualification_probabilities(ds, ids, q)
            for oid, verdict in decisions.items():
                assert verdict == (exact[oid] >= tau)

    def test_tau_validation(self):
        ds = synthetic_dataset(n=10, dims=2, n_samples=5, seed=6)
        engine = VerifierEngine(ds, RTreePNNQ.build(ds))
        with pytest.raises(ValueError):
            engine.query(ds.domain.center, tau=1.5)

    def test_verifier_avoids_some_exact_work(self):
        ds = synthetic_dataset(n=80, dims=2, u_max=400, n_samples=25, seed=7)
        engine = VerifierEngine(ds, RTreePNNQ.build(ds))
        rng = np.random.default_rng(8)
        for _ in range(15):
            q = ds.domain.sample_points(1, rng)[0]
            engine.query(q, tau=0.05)
        # At least some candidates should be classified by bounds alone.
        assert engine.verified_only > 0

    def test_works_with_pv_index(self):
        ds = synthetic_dataset(n=50, dims=2, u_max=300, n_samples=20, seed=9)
        engine = VerifierEngine(ds, PVIndex.build(ds))
        decisions = engine.query(ds.domain.center, tau=0.1)
        assert decisions  # some candidate is always retrieved
