"""Differential tests: tensorized Step-2 kernel vs the retained reference.

The packed-store kernel in :mod:`repro.engine.batch` must agree with
the pre-tensorization implementations (``tests/reference_step2.py``)
to 1e-9 across the whole parameter space the engines exercise: 1–50
candidates, batched query blocks, duplicated/tied distances, objects
with differing instance counts (exercising the store's zero-weight
padding), ``evaluate_ids`` subsets, and the degenerate empty/single
candidate cases — and through all seven engines.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from reference_step2 import (
    reference_groupnn_probabilities,
    reference_knn_probabilities,
    reference_probability_bounds,
    reference_qualification_probabilities,
    reference_reverse_instance_probability,
)
from repro import synthetic_dataset
from repro.core import (
    ExpectedNNEngine,
    GroupNNEngine,
    KNNEngine,
    PNNQEngine,
    ReverseNNEngine,
    TopKEngine,
    VerifierEngine,
    probability_bounds,
    qualification_probabilities,
)
from repro.engine import batched_qualification_probabilities
from repro.geometry import Rect
from repro.uncertain import UncertainDataset, UncertainObject

TOL = 1e-9


def _assert_close(new: dict, ref: dict) -> None:
    assert new.keys() == ref.keys()
    for oid in ref:
        assert new[oid] == pytest.approx(ref[oid], abs=TOL), oid


def variable_m_dataset(seed: int, n: int = 12) -> UncertainDataset:
    """Objects with differing instance counts (forces store padding)."""
    rng = np.random.default_rng(seed)
    objs = []
    for oid in range(n):
        m = int(rng.integers(1, 12))
        center = rng.uniform(0.0, 100.0, 2)
        inst = center + rng.uniform(-4.0, 4.0, (m, 2))
        w = rng.uniform(0.1, 1.0, m)
        w /= w.sum()
        objs.append(
            UncertainObject(
                oid,
                Rect(inst.min(axis=0), inst.max(axis=0)),
                inst,
                w,
            )
        )
    return UncertainDataset(objs, domain=Rect([-20, -20], [120, 120]))


def tied_dataset(seed: int) -> UncertainDataset:
    """Duplicated instances within and across objects (tie paths)."""
    rng = np.random.default_rng(seed)
    base = rng.uniform(0.0, 10.0, (6, 2))
    base[3] = base[1]  # internal duplicate
    objs = []
    for oid in range(6):
        inst = base if oid < 2 else base + float(oid)
        objs.append(
            UncertainObject(
                oid,
                Rect(inst.min(axis=0), inst.max(axis=0)),
                inst.copy(),
            )
        )
    return UncertainDataset(objs, domain=Rect([-5, -5], [25, 25]))


class TestKernelDifferential:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("b", [1, 3, 8])
    def test_matches_reference(self, seed, b):
        ds = synthetic_dataset(
            n=40, dims=2, u_max=700, n_samples=23, seed=seed
        )
        q = ds.domain.sample_points(b, np.random.default_rng(seed))
        ids = ds.ids[: 10 + 5 * seed]
        new = batched_qualification_probabilities(ds, ids, q)
        ref = reference_qualification_probabilities(ds, ids, q)
        for row_new, row_ref in zip(new, ref):
            _assert_close(row_new, row_ref)

    @pytest.mark.parametrize("n_cand", [1, 2, 3, 50])
    def test_candidate_count_extremes(self, n_cand):
        ds = synthetic_dataset(
            n=60, dims=2, u_max=600, n_samples=15, seed=9
        )
        q = ds.domain.sample_points(2, np.random.default_rng(9))
        ids = ds.ids[:n_cand]
        new = batched_qualification_probabilities(ds, ids, q)
        ref = reference_qualification_probabilities(ds, ids, q)
        for row_new, row_ref in zip(new, ref):
            _assert_close(row_new, row_ref)

    def test_empty_candidates(self):
        ds = synthetic_dataset(n=5, dims=2, n_samples=5, seed=0)
        q = np.zeros((3, 2))
        assert batched_qualification_probabilities(ds, [], q) == [
            {},
            {},
            {},
        ]

    def test_evaluate_subset(self):
        ds = synthetic_dataset(
            n=30, dims=2, u_max=600, n_samples=20, seed=3
        )
        q = ds.domain.sample_points(4, np.random.default_rng(3))
        ids = ds.ids[:14]
        for ev in (ids[2:7], [ids[0]], ids):
            new = batched_qualification_probabilities(
                ds, ids, q, evaluate_ids=ev
            )
            ref = reference_qualification_probabilities(
                ds, ids, q, evaluate_ids=ev
            )
            for row_new, row_ref in zip(new, ref):
                _assert_close(row_new, row_ref)

    def test_evaluate_subset_validation(self):
        ds = synthetic_dataset(n=10, dims=2, n_samples=5, seed=1)
        with pytest.raises(ValueError):
            batched_qualification_probabilities(
                ds, ds.ids[:3], np.zeros((1, 2)), evaluate_ids=[999]
            )

    @pytest.mark.parametrize("seed", range(3))
    def test_tied_distances(self, seed):
        ds = tied_dataset(seed)
        q = np.array([[1.0, 2.0], [5.0, 5.0], [0.0, 0.0]])
        new = batched_qualification_probabilities(ds, ds.ids, q)
        ref = reference_qualification_probabilities(ds, ds.ids, q)
        for row_new, row_ref in zip(new, ref):
            _assert_close(row_new, row_ref)

    @pytest.mark.parametrize("seed", range(3))
    def test_variable_instance_counts(self, seed):
        ds = variable_m_dataset(seed)
        q = ds.domain.sample_points(5, np.random.default_rng(seed))
        new = batched_qualification_probabilities(ds, ds.ids, q)
        ref = reference_qualification_probabilities(ds, ds.ids, q)
        for row_new, row_ref in zip(new, ref):
            _assert_close(row_new, row_ref)

    def test_single_query_view(self):
        ds = synthetic_dataset(
            n=25, dims=3, u_max=500, n_samples=12, seed=5
        )
        q = ds.domain.center
        ids = ds.ids[:8]
        _assert_close(
            qualification_probabilities(ds, ids, q),
            reference_qualification_probabilities(ds, ids, q[None, :])[0],
        )

    @given(st.integers(0, 200))
    @settings(max_examples=12, deadline=None)
    def test_differential_property(self, seed):
        rng = np.random.default_rng(seed)
        ds = variable_m_dataset(seed, n=int(rng.integers(2, 20)))
        b = int(rng.integers(1, 5))
        q = ds.domain.sample_points(b, rng)
        n_cand = int(rng.integers(1, len(ds.ids) + 1))
        ids = list(rng.choice(ds.ids, size=n_cand, replace=False))
        ids = [int(i) for i in ids]
        new = batched_qualification_probabilities(ds, ids, q)
        ref = reference_qualification_probabilities(ds, ids, q)
        for row_new, row_ref in zip(new, ref):
            _assert_close(row_new, row_ref)


class TestEnginesDifferential:
    """All seven engines against the retained reference math."""

    def _queries(self, ds, k=6, seed=11):
        return ds.domain.sample_points(k, np.random.default_rng(seed))

    def test_pnnq_engine(self):
        ds = synthetic_dataset(
            n=50, dims=2, u_max=600, n_samples=25, seed=21
        )
        engine = PNNQEngine(ds)
        for q in self._queries(ds):
            result = engine.query(q)
            ref = reference_qualification_probabilities(
                ds, list(result.candidate_ids), q[None, :]
            )[0]
            _assert_close(dict(result.probabilities), ref)

    def test_knn_engine(self):
        ds = synthetic_dataset(
            n=40, dims=2, u_max=600, n_samples=20, seed=22
        )
        engine = KNNEngine(ds)
        for k in (1, 2, 4):
            for q in self._queries(ds, 3):
                result = engine.query(q, k=k)
                ref = reference_knn_probabilities(
                    ds, list(result.candidate_ids), q, k
                )
                _assert_close(dict(result.probabilities), ref)

    def test_topk_engine(self):
        ds = synthetic_dataset(
            n=60, dims=2, u_max=500, n_samples=20, seed=23
        )
        engine = TopKEngine(ds)
        for q in self._queries(ds):
            result = engine.query(q, k=3)
            ids = engine.retriever.candidates(q)
            ref = reference_qualification_probabilities(
                ds, ids, q[None, :]
            )[0]
            for oid, prob in result.ranking:
                assert prob == pytest.approx(ref[oid], abs=TOL)

    def test_verifier_engine(self):
        ds = synthetic_dataset(
            n=60, dims=2, u_max=500, n_samples=20, seed=24
        )
        engine = VerifierEngine(ds)
        tau = 0.15
        for q in self._queries(ds):
            decisions = engine.query(q, tau=tau)
            ref = reference_qualification_probabilities(
                ds, sorted(decisions), q[None, :]
            )[0]
            for oid, verdict in decisions.items():
                assert verdict == (ref[oid] >= tau)

    def test_verifier_bounds_bracket_and_match(self):
        ds = synthetic_dataset(
            n=40, dims=2, u_max=500, n_samples=30, seed=25
        )
        q = ds.domain.center
        ids = ds.ids[:15]
        new = probability_bounds(ds, ids, q, n_bins=6)
        ref = reference_probability_bounds(ds, ids, q, n_bins=6)
        exact = reference_qualification_probabilities(
            ds, ids, q[None, :]
        )[0]
        for oid in ids:
            lo, hi = ref[oid]
            assert new[oid].lower == pytest.approx(lo, abs=TOL)
            assert new[oid].upper == pytest.approx(hi, abs=TOL)
            assert new[oid].contains(exact[oid])

    def test_groupnn_engine(self):
        ds = synthetic_dataset(
            n=40, dims=2, u_max=600, n_samples=15, seed=26
        )
        Q = ds.domain.sample_points(3, np.random.default_rng(26))
        engine = GroupNNEngine(ds)
        for aggregate in ("sum", "max", "min"):
            result = engine.query(Q, aggregate=aggregate)
            ref = reference_groupnn_probabilities(
                ds, list(result.candidate_ids), Q, aggregate
            )
            _assert_close(dict(result.probabilities), ref)

    def test_reversenn_engine(self):
        ds = synthetic_dataset(
            n=15, dims=2, u_max=800, n_samples=8, seed=27
        )
        engine = ReverseNNEngine(ds)
        query = ds[ds.ids[0]]
        result = engine.query(query)
        for oid in result.candidate_ids:
            ref = reference_reverse_instance_probability(ds, oid, query)
            got = dict(result.probabilities).get(oid, 0.0)
            assert got == pytest.approx(ref, abs=TOL)

    def test_expected_engine(self):
        ds = synthetic_dataset(
            n=40, dims=2, u_max=500, n_samples=20, seed=28
        )
        engine = ExpectedNNEngine(ds)
        for q in self._queries(ds):
            result = engine.query(q)
            for oid, dist in result.ranking:
                obj = ds[oid]
                ref = float(
                    np.dot(obj.weights, obj.distance_samples(q))
                )
                assert dist == pytest.approx(ref, abs=TOL)

    def test_kernel_stats_counters_accumulate(self):
        ds = synthetic_dataset(
            n=60, dims=2, u_max=600, n_samples=30, seed=29
        )
        engine = PNNQEngine(ds)
        for q in self._queries(ds, 4):
            engine.query(q)
        assert engine.stats.kernel_gather_seconds > 0.0
        assert engine.stats.kernel_eval_seconds > 0.0
        # The kernel split is a subset of the Step-2 wall-clock.
        assert (
            engine.stats.kernel_gather_seconds
            + engine.stats.kernel_eval_seconds
            <= engine.stats.probability_computation + 1e-6
        )
