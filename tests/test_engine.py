"""Tests for the unified query-execution layer (repro.engine).

Covers the satellite contract of the execution-layer PR: batch-vs-loop
result equivalence for all seven engines, ``ExecutionStats``
reset/snapshot/delta semantics, and LRU result-cache hit behavior —
plus the brute-force retriever fallback and candidate memoization.
"""

import numpy as np
import pytest

from repro import PVIndex, synthetic_dataset
from repro.core import (
    ExpectedNNEngine,
    GroupNNEngine,
    KNNEngine,
    PNNQEngine,
    ReverseNNEngine,
    TopKEngine,
    VerifierEngine,
)
from repro.core.pvcell import possible_nn_ids
from repro.engine import (
    BruteForceRetriever,
    CandidateMemo,
    ExecutionStats,
    LRUCache,
    batched_qualification_probabilities,
)
from repro.storage.pager import IOStats


@pytest.fixture(scope="module")
def dataset():
    return synthetic_dataset(
        n=50, dims=2, u_max=400, n_samples=12, seed=21
    )


@pytest.fixture(scope="module")
def index(dataset):
    return PVIndex.build(dataset.copy())


@pytest.fixture(scope="module")
def queries(dataset):
    rng = np.random.default_rng(5)
    distinct = dataset.domain.sample_points(8, rng)
    # Include exact repeats so the dedup path is exercised.
    return distinct[rng.integers(0, len(distinct), size=14)]


def assert_prob_maps_equal(a, b):
    assert set(a) == set(b)
    for oid in a:
        assert a[oid] == pytest.approx(b[oid], abs=1e-12)


# ----------------------------------------------------------------------
# Batch-vs-loop equivalence for all six engines
# ----------------------------------------------------------------------
class TestBatchLoopEquivalence:
    def test_pnnq(self, dataset, index, queries):
        engine = PNNQEngine(dataset, index)
        singles = [engine.query(q) for q in queries]
        batched = engine.query_batch(queries)
        for s, b in zip(singles, batched):
            assert s.candidate_ids == b.candidate_ids
            assert_prob_maps_equal(s.probabilities, b.probabilities)

    def test_pnnq_brute_force_fallback(self, dataset, queries):
        engine = PNNQEngine(dataset)
        singles = [engine.query(q) for q in queries]
        batched = engine.query_batch(queries)
        for s, b in zip(singles, batched):
            assert s.candidate_ids == b.candidate_ids
            assert_prob_maps_equal(s.probabilities, b.probabilities)

    @pytest.mark.parametrize("k", [1, 3])
    def test_knn(self, dataset, index, queries, k):
        engine = KNNEngine(dataset, retriever=index)
        singles = [engine.query(q, k=k) for q in queries]
        batched = engine.query_batch(queries, k=k)
        for s, b in zip(singles, batched):
            assert s.candidate_ids == b.candidate_ids
            assert_prob_maps_equal(s.probabilities, b.probabilities)

    def test_topk(self, dataset, index, queries):
        engine = TopKEngine(dataset, index)
        singles = [engine.query(q, k=3) for q in queries]
        batched = engine.query_batch(queries, k=3)
        for s, b in zip(singles, batched):
            assert s.ranking == b.ranking
            assert s.pruned == b.pruned

    @pytest.mark.parametrize("aggregate", ["sum", "max", "min"])
    def test_groupnn(self, dataset, index, aggregate):
        engine = GroupNNEngine(dataset, retriever=index)
        rng = np.random.default_rng(9)
        query_sets = [
            dataset.domain.sample_points(3, rng) for _ in range(4)
        ]
        query_sets.append(query_sets[0])  # exact repeat
        singles = [
            engine.query(qs, aggregate=aggregate) for qs in query_sets
        ]
        batched = engine.query_batch(query_sets, aggregate=aggregate)
        for s, b in zip(singles, batched):
            assert s.candidate_ids == b.candidate_ids
            assert_prob_maps_equal(s.probabilities, b.probabilities)

    def test_reversenn(self, dataset):
        engine = ReverseNNEngine(dataset)
        query_objects = [dataset[oid] for oid in dataset.ids[:3]]
        query_objects.append(query_objects[0])  # exact repeat
        singles = [engine.query(q) for q in query_objects]
        batched = engine.query_batch(query_objects)
        for s, b in zip(singles, batched):
            assert s.candidate_ids == b.candidate_ids
            assert_prob_maps_equal(s.probabilities, b.probabilities)

    def test_verifier(self, dataset, index, queries):
        engine = VerifierEngine(dataset, index)
        singles = [engine.query(q, tau=0.2) for q in queries]
        batched = engine.query_batch(queries, tau=0.2)
        assert singles == batched

    def test_expectednn(self, dataset, queries):
        engine = ExpectedNNEngine(dataset)
        singles = [engine.query(q) for q in queries]
        batched = engine.query_batch(queries)
        for s, b in zip(singles, batched):
            assert s.ranking == b.ranking

    def test_batch_counts_dedup(self, dataset, index, queries):
        engine = PNNQEngine(dataset, index)
        engine.query_batch(queries)
        assert engine.stats.batches == 1
        assert engine.stats.queries == len(queries)
        n_distinct = len({q.tobytes() for q in queries})
        assert engine.stats.dedup_hits == len(queries) - n_distinct


# ----------------------------------------------------------------------
# ExecutionStats semantics
# ----------------------------------------------------------------------
class TestExecutionStats:
    def test_reset_zeroes_everything(self):
        stats = ExecutionStats(
            object_retrieval=1.0,
            probability_computation=2.0,
            queries=3,
            batches=1,
            cache_hits=2,
            dedup_hits=1,
            memo_hits=4,
            or_io=IOStats(reads=5, writes=6),
            pc_io=IOStats(reads=7, writes=8),
        )
        stats.reset()
        assert stats == ExecutionStats()
        assert stats.total == 0.0
        assert stats.page_reads == 0

    def test_snapshot_is_independent(self):
        stats = ExecutionStats(queries=2, or_io=IOStats(reads=3))
        snap = stats.snapshot()
        stats.queries += 1
        stats.or_io.reads += 10
        assert snap.queries == 2
        assert snap.or_io.reads == 3

    def test_delta_fieldwise(self):
        stats = ExecutionStats(
            object_retrieval=1.0, queries=2, or_io=IOStats(reads=4)
        )
        earlier = stats.snapshot()
        stats.object_retrieval += 0.5
        stats.queries += 3
        stats.or_io.reads += 6
        stats.pc_io.writes += 2
        delta = stats.delta(earlier)
        assert delta.object_retrieval == pytest.approx(0.5)
        assert delta.queries == 3
        assert delta.or_io.reads == 6
        assert delta.pc_io.writes == 2
        assert delta.probability_computation == 0.0

    def test_capture_delta_since_matches_snapshot_delta(self):
        # capture()/delta_since() are the hot-path twins of
        # snapshot()/delta(): field-for-field equivalent, including
        # the I/O tail (guards the shared tuple-order contract).
        # Every scalar starts at a distinct non-zero value and every
        # scalar is perturbed by a distinct amount, so any index
        # mix-up between capture() and delta_since() shows up.
        stats = ExecutionStats(
            object_retrieval=1.5,
            probability_computation=2.5,
            queries=7,
            batches=2,
            cache_hits=3,
            dedup_hits=1,
            memo_hits=4,
            invalidations=2,
            retriever_fallbacks=1,
            kernel_gather_seconds=0.25,
            kernel_eval_seconds=0.75,
            shards_dispatched=11,
            shards_pruned=13,
            worker_busy_seconds=3.5,
            subscriptions_live=17,
            revisions_emitted=19,
            revisions_suppressed=23,
            or_io=IOStats(reads=5, writes=6),
            pc_io=IOStats(reads=7, writes=8),
        )
        captured = stats.capture()
        snap = stats.snapshot()
        stats.object_retrieval += 0.5
        stats.probability_computation += 1.25
        stats.queries += 2
        stats.batches += 6
        stats.cache_hits += 7
        stats.dedup_hits += 8
        stats.memo_hits += 9
        stats.invalidations += 1
        stats.retriever_fallbacks += 5
        stats.kernel_gather_seconds += 0.0625
        stats.kernel_eval_seconds += 0.125
        stats.shards_dispatched += 10
        stats.shards_pruned += 12
        stats.worker_busy_seconds += 0.375
        stats.subscriptions_live += 14
        stats.revisions_emitted += 15
        stats.revisions_suppressed += 16
        stats.or_io.reads += 3
        stats.pc_io.writes += 4
        delta = stats.delta_since(captured)
        assert delta == stats.delta(snap)
        assert delta.kernel_gather_seconds == 0.0625
        assert delta.kernel_eval_seconds == 0.125
        assert delta.shards_dispatched == 10
        assert delta.shards_pruned == 12
        assert delta.worker_busy_seconds == 0.375
        assert delta.subscriptions_live == 14
        assert delta.revisions_emitted == 15
        assert delta.revisions_suppressed == 16

    def test_merge_accumulates_every_counter(self):
        # merge() is the cross-process aggregation primitive: field
        # for field it must add, including the I/O tails.
        total = ExecutionStats(queries=1, shards_pruned=2,
                               or_io=IOStats(reads=1, writes=0))
        part = ExecutionStats(
            object_retrieval=0.5,
            probability_computation=0.25,
            queries=3,
            batches=1,
            cache_hits=2,
            dedup_hits=4,
            memo_hits=5,
            invalidations=6,
            retriever_fallbacks=7,
            kernel_gather_seconds=0.125,
            kernel_eval_seconds=0.0625,
            shards_dispatched=8,
            shards_pruned=9,
            worker_busy_seconds=1.5,
            subscriptions_live=14,
            revisions_emitted=15,
            revisions_suppressed=16,
            or_io=IOStats(reads=10, writes=11),
            pc_io=IOStats(reads=12, writes=13),
        )
        total.merge(part)
        want = part.snapshot()
        want.queries += 1
        want.shards_pruned += 2
        want.or_io.reads += 1
        assert total == want

    def test_io_properties_combine_phases(self):
        stats = ExecutionStats(
            or_io=IOStats(reads=2, writes=1),
            pc_io=IOStats(reads=3, writes=4),
        )
        assert stats.page_reads == 5
        assert stats.io.reads == 5
        assert stats.io.writes == 5

    def test_engine_reports_phase_io(self, dataset, index):
        engine = PNNQEngine(dataset, index, secondary=index.secondary)
        engine.query(dataset.domain.center)
        assert engine.stats.queries == 1
        assert engine.stats.or_io.reads > 0  # octree leaf read
        assert engine.stats.pc_io.reads > 0  # secondary pdf fetches
        assert engine.stats.object_retrieval > 0
        assert engine.stats.probability_computation > 0
        # Legacy alias used by the seed API.
        assert engine.times is engine.stats

    def test_stats_shared_across_query_and_batch(
        self, dataset, index, queries
    ):
        engine = PNNQEngine(dataset, index)
        engine.query(queries[0])
        engine.query_batch(queries)
        assert engine.stats.queries == 1 + len(queries)
        assert engine.stats.batches == 1


# ----------------------------------------------------------------------
# LRU result cache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_lru_eviction_order(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"
        cache.put("c", 3)  # evicts "b", the least recently used
        assert cache.get("b") is None
        assert cache.get("b", LRUCache.MISS) is LRUCache.MISS
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert len(cache) == 2

    def test_engine_cache_hits(self, dataset, index):
        engine = PNNQEngine(dataset, index, result_cache_size=8)
        q = dataset.domain.center
        first = engine.query(q)
        again = engine.query(q)
        assert again is first  # served from cache, not recomputed
        assert engine.stats.cache_hits == 1
        assert engine.stats.queries == 2

    def test_cache_respects_params(self, dataset, index):
        engine = TopKEngine(dataset, index, result_cache_size=8)
        q = dataset.domain.center
        r1 = engine.query(q, k=1)
        r3 = engine.query(q, k=3)
        assert engine.stats.cache_hits == 0
        assert r1.k == 1 and r3.k == 3

    def test_cache_spans_batches(self, dataset, index, queries):
        engine = PNNQEngine(dataset, index, result_cache_size=32)
        warm = engine.query_batch(queries)
        engine.stats.reset()
        cached = engine.query_batch(queries)
        assert engine.stats.cache_hits == len(queries)
        for w, c in zip(warm, cached):
            assert w is c

    def test_cached_results_equal_fresh(self, dataset, index, queries):
        cached_engine = PNNQEngine(dataset, index, result_cache_size=4)
        plain_engine = PNNQEngine(dataset, index)
        for q in list(queries) + list(queries):
            a = cached_engine.query(q)
            b = plain_engine.query(q)
            assert a.candidate_ids == b.candidate_ids
            assert_prob_maps_equal(a.probabilities, b.probabilities)
        assert cached_engine.stats.cache_hits > 0


# ----------------------------------------------------------------------
# Retriever fallback and candidate memoization
# ----------------------------------------------------------------------
class TestRetrievers:
    def test_brute_force_matches_ground_truth(self, dataset):
        retriever = BruteForceRetriever(dataset)
        rng = np.random.default_rng(3)
        for q in dataset.domain.sample_points(5, rng):
            assert set(retriever.candidates(q)) == possible_nn_ids(
                dataset, q
            )

    def test_batch_matches_single(self, dataset):
        retriever = BruteForceRetriever(dataset)
        rng = np.random.default_rng(4)
        block = dataset.domain.sample_points(6, rng)
        batched = retriever.candidates_batch(block)
        for q, ids in zip(block, batched):
            assert ids == retriever.candidates(q)

    def test_batch_chunking_preserves_results(
        self, dataset, monkeypatch
    ):
        from repro.engine import retrievers as retrievers_mod

        block = dataset.domain.sample_points(
            7, np.random.default_rng(11)
        )
        retriever = BruteForceRetriever(dataset)
        whole = retriever.candidates_batch(block)
        monkeypatch.setattr(retrievers_mod, "BATCH_CHUNK", 2)
        assert retriever.candidates_batch(block) == whole

    def test_knn_batch_chunking_preserves_results(
        self, dataset, monkeypatch
    ):
        from repro.engine import retrievers as retrievers_mod

        engine = KNNEngine(dataset)
        block = dataset.domain.sample_points(
            7, np.random.default_rng(12)
        )
        whole = engine._retrieve_batch(list(block), {"k": 3})
        monkeypatch.setattr(retrievers_mod, "BATCH_CHUNK", 2)
        assert engine._retrieve_batch(list(block), {"k": 3}) == whole

    def test_memo_reuses_nearby_candidates(self, dataset, index):
        engine = PNNQEngine(dataset, index, memo_radius=1e9)
        # With a cell larger than the domain every distinct query in a
        # batch shares one Step-1 retrieval.
        rng = np.random.default_rng(6)
        block = dataset.domain.sample_points(5, rng)
        results = engine.query_batch(block)
        assert engine.stats.memo_hits == len(block) - 1
        assert len(results) == len(block)

    def test_memo_applies_to_brute_force_fallback(self, dataset):
        # A positive memo_radius must win over the candidates_batch
        # fast path — otherwise the knob would silently no-op for the
        # default retriever.
        engine = PNNQEngine(dataset, memo_radius=1e9)
        rng = np.random.default_rng(13)
        block = dataset.domain.sample_points(6, rng)
        results = engine.query_batch(block)
        assert engine.stats.memo_hits == len(block) - 1
        assert len(results) == len(block)

    def test_memo_applies_to_knn_filter_path(self, dataset):
        engine = KNNEngine(dataset, memo_radius=1e9)
        rng = np.random.default_rng(14)
        block = dataset.domain.sample_points(6, rng)
        results = engine.query_batch(block, k=3)
        assert engine.stats.memo_hits == len(block) - 1
        assert len(results) == len(block)

    def test_memo_radius_zero_is_exact(self):
        memo = CandidateMemo(0.0)
        memo.store(np.array([1.0, 2.0]), [7])
        assert memo.lookup(np.array([1.0, 2.0])) == [7]
        assert memo.lookup(np.array([1.0, 2.0000001])) is None


# ----------------------------------------------------------------------
# Batched Step-2 kernel
# ----------------------------------------------------------------------
class TestBatchedKernel:
    def test_matches_single_query_step2(self, dataset):
        from repro.core.pnnq import qualification_probabilities

        rng = np.random.default_rng(8)
        block = dataset.domain.sample_points(4, rng)
        ids = sorted(dataset.ids)[:6]
        batched = batched_qualification_probabilities(
            dataset, ids, block
        )
        for q, probs in zip(block, batched):
            assert_prob_maps_equal(
                probs, qualification_probabilities(dataset, ids, q)
            )

    def test_degenerate_candidate_sets(self, dataset):
        block = np.zeros((3, 2))
        assert batched_qualification_probabilities(
            dataset, [], block
        ) == [{}, {}, {}]
        only = dataset.ids[0]
        assert batched_qualification_probabilities(
            dataset, [only], block
        ) == [{only: 1.0}] * 3


# ----------------------------------------------------------------------
# Storage satellite: pager exports match the package re-exports
# ----------------------------------------------------------------------
def test_pager_all_exports_complete():
    from repro.storage import pager

    assert "PageChain" in pager.__all__
    assert "DEFAULT_PAGE_SIZE" in pager.__all__
    for name in pager.__all__:
        assert hasattr(pager, name)


# ----------------------------------------------------------------------
# Epoch-aware invalidation: no engine may serve pre-mutation answers
# ----------------------------------------------------------------------
def _mutable_dataset(n=30, seed=77):
    return synthetic_dataset(n=n, dims=2, u_max=400, n_samples=8, seed=seed)


def _dominating_object(dataset, q, oid=9_999):
    """An object glued to ``q``: certainly the post-insert NN there."""
    from repro.geometry import Rect
    from repro.uncertain import UncertainObject

    lo = np.maximum(q - 1.0, dataset.domain.lo)
    hi = np.minimum(q + 1.0, dataset.domain.hi)
    region = Rect(lo, hi)
    instances = np.stack([region.center, region.center + 0.1])
    return UncertainObject(oid, region, instances, None)


class TestEpochInvalidation:
    def test_result_cache_flushed_on_insert(self):
        dataset = _mutable_dataset()
        engine = PNNQEngine(dataset, result_cache_size=8)
        q = dataset.domain.center
        stale = engine.query(q)
        dataset.insert(_dominating_object(dataset, q))
        fresh = engine.query(q)
        assert engine.stats.invalidations == 1
        assert engine.stats.cache_hits == 0
        assert fresh.best == 9_999
        assert stale.best != 9_999
        # Post-mutation answers re-enter the (flushed) cache normally.
        again = engine.query(q)
        assert engine.stats.cache_hits == 1
        assert again is fresh

    def test_query_batch_cache_and_memo_cannot_serve_stale(self):
        # The satellite regression: a batch served through the LRU
        # result cache AND the candidate memo must reflect a direct
        # ``dataset.insert`` issued between batches.
        dataset = _mutable_dataset(seed=78)
        engine = PNNQEngine(
            dataset, result_cache_size=16, memo_radius=1e9
        )
        rng = np.random.default_rng(1)
        block = dataset.domain.sample_points(5, rng)
        before = engine.query_batch(block)
        assert engine.stats.memo_hits == len(block) - 1

        dataset.insert(_dominating_object(dataset, block[0]))
        after = engine.query_batch(block)
        assert engine.stats.invalidations == 1
        # The object glued to block[0] dominates there: a stale cached
        # result or memoized candidate set would miss it.
        assert after[0].best == 9_999

        # Identically configured engine built fresh on the mutated
        # dataset (same memo radius: the memo's cell sharing is part of
        # the configured semantics being compared).
        reference = PNNQEngine(dataset, memo_radius=1e9)
        for got, want, old in zip(
            after, reference.query_batch(block), before
        ):
            assert_prob_maps_equal(got.probabilities, want.probabilities)
            assert got is not old

    def test_memo_persists_across_batches_within_epoch(self):
        dataset = _mutable_dataset(seed=79)
        engine = PNNQEngine(dataset, memo_radius=1e9)
        rng = np.random.default_rng(2)
        engine.query_batch(dataset.domain.sample_points(3, rng))
        hits_before = engine.stats.memo_hits
        # No mutation: the second batch reuses the memoized Step-1 set
        # for every distinct query.
        engine.query_batch(dataset.domain.sample_points(3, rng))
        assert engine.stats.memo_hits == hits_before + 3
        assert engine.stats.invalidations == 0

    def test_unmaintained_index_falls_back_to_brute_force(self):
        from repro.rtree import RTreePNNQ

        dataset = _mutable_dataset(seed=80)
        index = RTreePNNQ.build(dataset)
        engine = PNNQEngine(dataset, index)
        q = dataset.domain.center
        engine.query(q)
        assert engine.has_index

        # Mutating the dataset directly bypasses the R-tree (it has no
        # incremental maintenance): the engine must stop trusting it.
        dataset.insert(_dominating_object(dataset, q))
        result = engine.query(q)
        assert not engine.has_index
        assert isinstance(engine.retriever, BruteForceRetriever)
        assert engine.stats.retriever_fallbacks == 1
        assert result.best == 9_999

    def test_maintained_pv_index_is_kept(self):
        dataset = _mutable_dataset(seed=81)
        index = PVIndex.build(dataset)
        engine = PNNQEngine(dataset, index, result_cache_size=4)
        q = dataset.domain.center
        engine.query(q)
        index.insert(_dominating_object(dataset, q))
        result = engine.query(q)
        assert engine.has_index
        assert engine.retriever is index
        assert engine.stats.invalidations == 1
        assert engine.stats.retriever_fallbacks == 0
        assert result.best == 9_999

    def test_epoch_counters_reported_in_stats(self):
        stats = ExecutionStats()
        stats.invalidations = 3
        stats.retriever_fallbacks = 1
        snap = stats.snapshot()
        assert snap.invalidations == 3
        stats.invalidations = 5
        assert stats.delta(snap).invalidations == 2
        assert stats.delta(snap).retriever_fallbacks == 0
        stats.reset()
        assert stats.invalidations == 0
        assert stats.retriever_fallbacks == 0

    def test_fallback_drops_stale_secondary(self):
        # Code-review regression: an engine wired with an index's
        # secondary (pdf-fetch charging) must drop it together with
        # the stale retriever — otherwise Step 2 KeyErrors on objects
        # inserted after the index was built.
        dataset = _mutable_dataset(seed=82)
        index = PVIndex.build(dataset)
        engine = PNNQEngine(dataset, index, secondary=index.secondary)
        q = dataset.domain.center
        engine.query(q)
        dataset.insert(_dominating_object(dataset, q))
        result = engine.query(q)  # must not raise
        assert result.best == 9_999
        assert engine.secondary is None
        assert engine.stats.retriever_fallbacks == 1

    def test_engine_built_after_bypassing_mutation_distrusts_index(self):
        # Code-review regression: constructing the engine *after* a
        # mutation that bypassed the index must not trust the stale
        # retriever either.
        from repro.rtree import RTreePNNQ

        dataset = _mutable_dataset(seed=83)
        index = RTreePNNQ.build(dataset)
        q = dataset.domain.center
        dataset.insert(_dominating_object(dataset, q))
        engine = PNNQEngine(dataset, index)
        assert not engine.has_index
        assert engine.stats.retriever_fallbacks == 1
        assert engine.query(q).best == 9_999

    def test_candidate_memo_is_bounded(self):
        memo = CandidateMemo(radius=1.0, maxsize=3)
        for i in range(5):
            memo.store(np.array([float(i), 0.0]), [i])
        assert len(memo._cells) == 3
        assert memo.lookup(np.array([0.0, 0.0])) is None  # evicted
        assert memo.lookup(np.array([4.0, 0.0])) == [4]
