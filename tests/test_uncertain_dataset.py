"""Tests for the dataset container and the generators."""

import numpy as np
import pytest

from repro import Rect, UncertainDataset, UncertainObject
from repro.uncertain import (
    clustered_dataset,
    simulate_airports,
    simulate_roads,
    simulate_rrlines,
    synthetic_dataset,
    uniform_pdf,
)


def make_obj(oid, center, half=1.0, seed=0):
    region = Rect.from_center(center, half)
    inst, w = uniform_pdf(region, 5, np.random.default_rng(seed))
    return UncertainObject(oid, region, inst, w)


class TestDataset:
    def test_basic_container(self):
        ds = UncertainDataset([make_obj(0, [5, 5]), make_obj(1, [8, 8])])
        assert len(ds) == 2
        assert 0 in ds and 1 in ds and 2 not in ds
        assert ds[0].oid == 0
        assert ds.get(99) is None
        assert {o.oid for o in ds} == {0, 1}

    def test_requires_objects(self):
        with pytest.raises(ValueError):
            UncertainDataset([])

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError):
            UncertainDataset([make_obj(0, [5, 5]), make_obj(0, [8, 8])])

    def test_rejects_mixed_dims(self):
        a = make_obj(0, [5, 5])
        region = Rect.cube(0, 1, 3)
        inst, w = uniform_pdf(region, 5, np.random.default_rng(0))
        b = UncertainObject(1, region, inst, w)
        with pytest.raises(ValueError):
            UncertainDataset([a, b])

    def test_default_domain_bounds_objects(self):
        ds = UncertainDataset([make_obj(0, [5, 5]), make_obj(1, [9, 2])])
        for o in ds:
            assert ds.domain.contains_rect(o.region)

    def test_explicit_domain_validated(self):
        with pytest.raises(ValueError):
            UncertainDataset(
                [make_obj(0, [5, 5])], domain=Rect([0, 0], [1, 1])
            )

    def test_domain_dim_mismatch(self):
        with pytest.raises(ValueError):
            UncertainDataset(
                [make_obj(0, [5, 5])], domain=Rect.cube(0, 10, 3)
            )

    def test_packed_regions_cache_and_shape(self):
        ds = UncertainDataset([make_obj(0, [5, 5]), make_obj(1, [8, 8])])
        ids, los, his = ds.packed_regions()
        assert ids.shape == (2,)
        assert los.shape == (2, 2)
        # Cached object identity until mutation.
        assert ds.packed_regions()[1] is los

    def test_insert_invalidates_cache(self):
        ds = UncertainDataset(
            [make_obj(0, [5, 5]), make_obj(1, [8, 8])],
            domain=Rect.cube(0, 20, 2),
        )
        ds.packed_regions()
        ds.insert(make_obj(2, [12, 12]))
        ids, los, his = ds.packed_regions()
        assert len(ids) == 3

    def test_insert_duplicate_raises(self):
        ds = UncertainDataset([make_obj(0, [5, 5]), make_obj(1, [8, 8])])
        with pytest.raises(ValueError):
            ds.insert(make_obj(0, [6, 6]))

    def test_insert_outside_domain_raises(self):
        ds = UncertainDataset(
            [make_obj(0, [5, 5])], domain=Rect.cube(0, 10, 2)
        )
        with pytest.raises(ValueError):
            ds.insert(make_obj(1, [50, 50]))

    def test_delete(self):
        ds = UncertainDataset([make_obj(0, [5, 5]), make_obj(1, [8, 8])])
        obj = ds.delete(0)
        assert obj.oid == 0
        assert len(ds) == 1

    def test_delete_missing_raises(self):
        ds = UncertainDataset([make_obj(0, [5, 5]), make_obj(1, [8, 8])])
        with pytest.raises(KeyError):
            ds.delete(42)

    def test_delete_last_object_raises(self):
        ds = UncertainDataset([make_obj(0, [5, 5])])
        with pytest.raises(ValueError):
            ds.delete(0)

    def test_copy_is_independent(self):
        ds = UncertainDataset(
            [make_obj(0, [5, 5]), make_obj(1, [8, 8])],
            domain=Rect.cube(0, 20, 2),
        )
        cp = ds.copy()
        cp.delete(0)
        assert 0 in ds and 0 not in cp

    def test_means_match_objects(self):
        ds = UncertainDataset([make_obj(0, [5, 5]), make_obj(1, [8, 8])])
        means = ds.means()
        assert means.shape == (2, 2)
        assert np.allclose(sorted(means[:, 0]), [5, 8])


class TestEpochAndRowHandles:
    def make(self):
        return UncertainDataset(
            [make_obj(0, [5, 5]), make_obj(1, [8, 8])],
            domain=Rect.cube(0, 20, 2),
        )

    def test_epoch_starts_at_zero_and_bumps_on_mutation(self):
        ds = self.make()
        assert ds.epoch == 0
        ds.insert(make_obj(2, [12, 12]))
        assert ds.epoch == 1
        ds.delete(2)
        assert ds.epoch == 2

    def test_failed_mutations_leave_epoch_alone(self):
        ds = self.make()
        with pytest.raises(ValueError):
            ds.insert(make_obj(0, [6, 6]))  # duplicate id
        with pytest.raises(KeyError):
            ds.delete(42)
        assert ds.epoch == 0

    def test_delete_last_object_leaves_epoch_alone(self):
        ds = UncertainDataset([make_obj(0, [5, 5])])
        with pytest.raises(ValueError):
            ds.delete(0)
        assert ds.epoch == 0

    def test_row_handles_stable_across_unrelated_mutations(self):
        ds = self.make()
        handle = ds.row_of(1)
        ds.insert(make_obj(2, [12, 12]))
        ds.insert(make_obj(3, [3, 14]))
        ds.delete(2)
        assert ds.row_of(1) == handle

    def test_row_handles_never_reused(self):
        ds = self.make()
        ds.insert(make_obj(2, [12, 12]))
        released = ds.row_of(2)
        ds.delete(2)
        ds.insert(make_obj(5, [12, 12]))
        assert ds.row_of(5) > released
        with pytest.raises(KeyError):
            ds.row_of(2)

    def test_copy_has_independent_epoch(self):
        ds = self.make()
        ds.insert(make_obj(2, [12, 12]))
        cp = ds.copy()
        assert cp.epoch == 0
        cp.delete(0)
        assert cp.epoch == 1
        assert ds.epoch == 1  # the original's counter is untouched


class TestGenerators:
    def test_synthetic_shape(self):
        ds = synthetic_dataset(n=50, dims=3, u_max=40, n_samples=10, seed=0)
        assert len(ds) == 50
        assert ds.dims == 3
        for o in ds:
            assert np.all(o.region.side_lengths <= 40 + 1e-9)
            assert np.all(o.region.side_lengths >= 1 - 1e-9)
            assert o.n_instances == 10

    def test_synthetic_reproducible(self):
        a = synthetic_dataset(n=20, dims=2, seed=5)
        b = synthetic_dataset(n=20, dims=2, seed=5)
        for oa, ob in zip(a, b):
            assert oa.region == ob.region

    def test_synthetic_respects_domain(self):
        ds = synthetic_dataset(n=100, dims=2, u_max=100, seed=1)
        for o in ds:
            assert ds.domain.contains_rect(o.region)

    def test_synthetic_rejects_bad_params(self):
        with pytest.raises(ValueError):
            synthetic_dataset(n=0)
        with pytest.raises(ValueError):
            synthetic_dataset(n=5, u_max=0.5)

    def test_clustered_dataset(self):
        ds = clustered_dataset(n=80, dims=2, n_clusters=4, seed=2)
        assert len(ds) == 80
        # Clustering produces non-uniform density: the bounding box of
        # means should be clearly smaller than a uniform scatter's.
        means = ds.means()
        assert means.std() < 10_000 / 2

    def test_simulate_roads(self):
        ds = simulate_roads(n=150, n_samples=5, seed=3)
        assert len(ds) == 150
        assert ds.dims == 2
        # Elongated rectangles: aspect ratio frequently far from 1.
        ratios = [
            max(o.region.side_lengths) / max(1e-9, min(o.region.side_lengths))
            for o in ds
        ]
        assert np.median(ratios) > 2

    def test_simulate_rrlines(self):
        ds = simulate_rrlines(n=100, n_samples=5, seed=4)
        assert len(ds) == 100 and ds.dims == 2

    def test_simulate_airports(self):
        ds = simulate_airports(n=120, n_samples=5, seed=5)
        assert len(ds) == 120 and ds.dims == 3
        for o in ds:
            assert np.allclose(o.region.side_lengths, 20.0)

    def test_real_sims_fit_domain(self):
        for ds in (
            simulate_roads(n=60, n_samples=2, seed=1),
            simulate_rrlines(n=60, n_samples=2, seed=1),
            simulate_airports(n=60, n_samples=2, seed=1),
        ):
            for o in ds:
                assert ds.domain.contains_rect(o.region)
