"""Constructor-normalization and frozen-result regression tests.

Satellites of the API PR: all seven engines share the uniform
``Engine(dataset, retriever=None, *, secondary=None, ...)`` order, the
legacy ``Engine(retriever, dataset)`` order still works behind a
``DeprecationWarning`` with identical answers, and shared result
envelopes are read-only (mutating a cached result raises instead of
corrupting every other holder of the same object).
"""

import dataclasses

import numpy as np
import pytest

from repro import PVIndex, synthetic_dataset
from repro.core import (
    ExpectedNNEngine,
    GroupNNEngine,
    KNNEngine,
    PNNQEngine,
    ReverseNNEngine,
    TopKEngine,
    VerifierEngine,
)
from repro.engine import FrozenDict


@pytest.fixture(scope="module")
def dataset():
    return synthetic_dataset(
        n=40, dims=2, u_max=400, n_samples=10, seed=17
    )


@pytest.fixture(scope="module")
def index(dataset):
    return PVIndex.build(dataset.copy())


@pytest.fixture(scope="module")
def query(dataset):
    return dataset.domain.center


# ----------------------------------------------------------------------
# Uniform constructor order + deprecated legacy order
# ----------------------------------------------------------------------
class TestConstructorNormalization:
    @pytest.mark.parametrize(
        "engine_cls", [PNNQEngine, TopKEngine, VerifierEngine]
    )
    def test_legacy_order_warns_and_matches(
        self, engine_cls, dataset, index, query
    ):
        new_style = engine_cls(dataset, index)
        with pytest.warns(DeprecationWarning, match="deprecated"):
            legacy = engine_cls(index, dataset)
        assert legacy.dataset is dataset
        assert legacy.retriever is index
        a, b = legacy.query(query), new_style.query(query)
        if engine_cls is VerifierEngine:
            assert a == b  # plain decision mappings
        elif engine_cls is TopKEngine:
            assert a.ranking == b.ranking
        else:
            assert a.candidate_ids == b.candidate_ids
            assert a.probabilities == b.probabilities

    def test_legacy_positional_n_bins_still_binds(
        self, dataset, index, query
    ):
        with pytest.warns(DeprecationWarning):
            legacy = VerifierEngine(index, dataset, 4)
        assert legacy.n_bins == 4
        assert legacy.query(query) == VerifierEngine(
            dataset, index, n_bins=4
        ).query(query)

    def test_new_order_does_not_warn(self, dataset, index):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            PNNQEngine(dataset, index)
            PNNQEngine(dataset)
            TopKEngine(dataset, index, n_bins=4)
            VerifierEngine(dataset)
            KNNEngine(dataset, retriever=index)
            GroupNNEngine(dataset)
            ReverseNNEngine(dataset)
            ExpectedNNEngine(dataset)

    def test_dataset_is_required_somewhere(self, index):
        with pytest.raises(TypeError, match="UncertainDataset"):
            PNNQEngine(index, index)
        with pytest.raises(TypeError, match="UncertainDataset"):
            KNNEngine(None)

    @pytest.mark.parametrize(
        "engine_cls",
        [
            PNNQEngine,
            KNNEngine,
            TopKEngine,
            VerifierEngine,
            GroupNNEngine,
            ReverseNNEngine,
            ExpectedNNEngine,
        ],
    )
    def test_uniform_signature(self, engine_cls):
        import inspect

        params = list(
            inspect.signature(engine_cls.__init__).parameters.values()
        )[1:]
        assert params[0].name == "dataset"
        assert params[1].name == "retriever"
        assert params[1].default is None
        keyword_only = {
            p.name
            for p in params
            if p.kind is inspect.Parameter.KEYWORD_ONLY
        }
        assert {
            "secondary", "result_cache_size", "memo_radius"
        } <= keyword_only


# ----------------------------------------------------------------------
# Frozen results: the shared-mutable footgun is closed
# ----------------------------------------------------------------------
class TestFrozenResults:
    def test_mutating_a_cached_result_raises(self, dataset, index, query):
        engine = PNNQEngine(dataset, index, result_cache_size=8)
        result = engine.query(query)
        assert engine.query(query) is result  # shared via the cache
        with pytest.raises(TypeError):
            result.probabilities[123] = 1.0
        with pytest.raises(TypeError):
            result.probabilities.clear()
        with pytest.raises(AttributeError):
            result.candidate_ids.append(123)  # tuples cannot append
        with pytest.raises(ValueError):
            result.query[0] = -1.0  # non-writeable array
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.probabilities = {}
        # The shared copy is intact for the next cache hit.
        assert engine.query(query) is result

    def test_verifier_decision_dicts_are_frozen(self, dataset, query):
        engine = VerifierEngine(dataset, result_cache_size=8)
        decisions = engine.query(query, tau=0.2)
        assert isinstance(decisions, FrozenDict)
        with pytest.raises(TypeError):
            decisions[999] = True
        with pytest.raises(TypeError):
            decisions.update({})
        # Equality with plain dicts (and the documented escape hatch).
        assert decisions == dict(decisions)
        mutable = decisions.copy()
        mutable[999] = True  # plain dict: fine

    def test_batch_shared_results_are_frozen(self, dataset, query):
        engine = PNNQEngine(dataset)
        a, b = engine.query_batch([query, query])
        assert a is b  # deduplicated: one shared object
        with pytest.raises(TypeError):
            a.probabilities[0] = 0.0

    def test_all_result_types_freeze_their_containers(self, dataset, query):
        knn = KNNEngine(dataset).query(query, k=2)
        with pytest.raises(TypeError):
            knn.probabilities[0] = 0.0
        assert isinstance(knn.candidate_ids, tuple)

        group = GroupNNEngine(dataset).query(
            np.stack([query, query + 5.0])
        )
        with pytest.raises(TypeError):
            group.probabilities[0] = 0.0
        with pytest.raises(ValueError):
            group.queries[0, 0] = 0.0

        reverse = ReverseNNEngine(dataset).query(dataset[dataset.ids[0]])
        with pytest.raises(TypeError):
            reverse.probabilities[0] = 0.0

        expected = ExpectedNNEngine(dataset).query(query)
        with pytest.raises(ValueError):
            expected.query[0] = 0.0

        topk = TopKEngine(dataset).query(query, k=2)
        with pytest.raises(ValueError):
            topk.query[0] = 0.0

    def test_results_copy_caller_arrays(self, dataset):
        # Freezing must not flip the writeable flag on the caller's
        # own query array, and later caller mutation must not reach
        # the stored result.
        engine = PNNQEngine(dataset)
        q = np.array(dataset.domain.center)
        result = engine.query(q)
        q[0] += 1.0  # caller's array stays writeable
        assert result.query[0] == pytest.approx(q[0] - 1.0)
